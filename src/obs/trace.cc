#include "obs/trace.h"

#include "obs/run_meta.h"
#include "util/env_config.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace betty::obs {

std::atomic<bool> Trace::enabled_{false};

namespace {

/**
 * One thread's event ring. Written lock-free by its owning thread;
 * readers synchronize through the head counter (release on write,
 * acquire on read), so snapshotting after the writer has quiesced —
 * the supported usage — observes every event.
 */
struct ThreadBuffer
{
    explicit ThreadBuffer(size_t capacity) : ring(capacity) {}

    std::vector<TraceEvent> ring;
    /** Total events ever recorded; ring index is head % capacity. */
    std::atomic<size_t> head{0};
};

struct Registry
{
    Registry() : ringCapacity(envcfg::traceRingCapacity()) {}

    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::unordered_map<int32_t, std::string> laneNames;
    int32_t nextLane = 0;
    std::atomic<size_t> ringCapacity;

    /** Counter samples (ph="C"): low-rate, so a capped flat vector
     * under the mutex beats per-thread rings. */
    std::vector<CounterSample> counters;
    int64_t droppedCounters = 0;

    /** Dependency edges: low-rate (one per task spawn / handoff /
     * join), same capped-vector treatment as counters. */
    std::vector<FlowEdge> flows;
    int64_t droppedFlows = 0;
};

/** Retention cap for counter samples across the process. */
constexpr size_t kMaxCounterSamples = 1 << 16;

/** Retention cap for flow edges across the process. */
constexpr size_t kMaxFlowEdges = 1 << 18;

Registry&
registry()
{
    static Registry* instance = new Registry; // leaked: outlives threads
    return *instance;
}

thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
thread_local int32_t tls_lane = -1;

/** One open TraceSpan on the calling thread's stack. */
struct OpenSpan
{
    uint64_t id;
    /** Literal or nullptr; lets spawned work inherit a category. */
    const char* category;
};

/** The calling thread's open TraceSpans, innermost last. */
thread_local std::vector<OpenSpan> tls_span_stack;

/** Process-wide span id allocator; 0 is reserved for "no span". */
std::atomic<uint64_t> g_next_span_id{1};

ThreadBuffer&
threadBuffer()
{
    if (!tls_buffer) {
        auto& reg = registry();
        auto buffer = std::make_shared<ThreadBuffer>(
            reg.ringCapacity.load(std::memory_order_relaxed));
        std::lock_guard<std::mutex> lock(reg.mutex);
        if (tls_lane < 0)
            tls_lane = reg.nextLane++;
        reg.buffers.push_back(buffer);
        tls_buffer = std::move(buffer);
    }
    return *tls_buffer;
}

void
appendJsonEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

void
appendSpanEvent(std::string& out, const TraceEvent& event)
{
    std::string name;
    appendJsonEscaped(name, event.name);
    char line[320];
    std::snprintf(line, sizeof(line),
                  ",{\"name\":\"%s\",\"cat\":\"%s\","
                  "\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
                  "\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"span_id\":%llu}}",
                  name.c_str(),
                  event.category ? event.category : "betty",
                  (long long)event.startUs, (long long)event.durUs,
                  event.lane, (unsigned long long)event.id);
    out += line;
}

} // namespace

void
Trace::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

int64_t
Trace::nowUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point anchor = Clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - anchor)
        .count();
}

void
Trace::record(const char* name, int64_t start_us, int64_t dur_us)
{
    const uint64_t id =
        g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    endSpan(name, nullptr, id | (uint64_t(1) << 63), start_us,
            dur_us);
}

uint64_t
Trace::beginSpan(const char* category)
{
    const uint64_t id =
        g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    tls_span_stack.push_back(OpenSpan{id, category});
    return id;
}

void
Trace::endSpan(const char* name, const char* category, uint64_t id,
               int64_t start_us, int64_t dur_us)
{
    // record() reuses this path for stack-less one-shot events by
    // setting the top bit; strip it and skip the pop.
    const bool on_stack = (id >> 63) == 0;
    id &= ~(uint64_t(1) << 63);
    if (on_stack && !tls_span_stack.empty() &&
        tls_span_stack.back().id == id)
        tls_span_stack.pop_back();
    ThreadBuffer& buffer = threadBuffer();
    const size_t head = buffer.head.load(std::memory_order_relaxed);
    buffer.ring[head % buffer.ring.size()] =
        TraceEvent{name, category, id, start_us, dur_us,
                   currentLane()};
    buffer.head.store(head + 1, std::memory_order_release);
}

uint64_t
Trace::currentSpanId()
{
    return tls_span_stack.empty() ? 0 : tls_span_stack.back().id;
}

const char*
Trace::currentSpanCategory()
{
    for (auto it = tls_span_stack.rbegin();
         it != tls_span_stack.rend(); ++it)
        if (it->category)
            return it->category;
    return nullptr;
}

void
Trace::recordFlow(uint64_t from_span, uint64_t to_span, int64_t ts_us)
{
    if (!enabled() || from_span == 0 || to_span == 0 ||
        from_span == to_span)
        return;
    if (ts_us < 0)
        ts_us = nowUs();
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.flows.size() >= kMaxFlowEdges) {
        ++reg.droppedFlows;
        return;
    }
    reg.flows.push_back(FlowEdge{from_span, to_span, ts_us});
}

std::vector<FlowEdge>
Trace::flowSnapshot()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.flows;
}

void
Trace::recordCounter(const char* track,
                     std::vector<std::pair<const char*, int64_t>> values)
{
    if (!enabled())
        return;
    const int64_t ts = nowUs();
    const int32_t lane = currentLane();
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.counters.size() >= kMaxCounterSamples) {
        ++reg.droppedCounters;
        return;
    }
    reg.counters.push_back(
        CounterSample{track, ts, lane, std::move(values)});
}

std::vector<CounterSample>
Trace::counterSnapshot()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.counters;
}

void
Trace::setLane(int32_t lane, const std::string& name)
{
    tls_lane = lane;
    if (!name.empty()) {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.laneNames[lane] = name;
    }
}

int32_t
Trace::currentLane()
{
    if (tls_lane < 0) {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        if (tls_lane < 0)
            tls_lane = reg.nextLane++;
    }
    return tls_lane;
}

void
Trace::nameCurrentLane(const std::string& name)
{
    if (name.empty())
        return;
    const int32_t lane = currentLane();
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.laneNames[lane] = name;
}

void
Trace::setRingCapacity(size_t events)
{
    registry().ringCapacity.store(events > 0 ? events : 1,
                                  std::memory_order_relaxed);
}

std::vector<TraceEvent>
Trace::snapshot()
{
    auto& reg = registry();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    std::vector<TraceEvent> events;
    for (const auto& buffer : buffers) {
        const size_t head =
            buffer->head.load(std::memory_order_acquire);
        const size_t capacity = buffer->ring.size();
        const size_t count = head < capacity ? head : capacity;
        const size_t first = head - count; // oldest retained event
        for (size_t i = 0; i < count; ++i)
            events.push_back(buffer->ring[(first + i) % capacity]);
    }
    return events;
}

int64_t
Trace::droppedEvents()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    int64_t dropped = reg.droppedCounters + reg.droppedFlows;
    for (const auto& buffer : reg.buffers) {
        const size_t head =
            buffer->head.load(std::memory_order_acquire);
        if (head > buffer->ring.size())
            dropped += int64_t(head - buffer->ring.size());
    }
    return dropped;
}

void
Trace::clear()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buffer : reg.buffers)
        buffer->head.store(0, std::memory_order_release);
    reg.counters.clear();
    reg.droppedCounters = 0;
    reg.flows.clear();
    reg.droppedFlows = 0;
}

std::string
Trace::chromeTraceJson()
{
    const auto events = snapshot();
    const auto counters = counterSnapshot();
    const auto flows = flowSnapshot();
    const int64_t dropped = droppedEvents();
    std::unordered_map<int32_t, std::string> lane_names;
    size_t ring_capacity = 0;
    {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        lane_names = reg.laneNames;
        ring_capacity =
            reg.ringCapacity.load(std::memory_order_relaxed);
    }

    // Spans by id, for resolving flow-edge endpoints to lanes below.
    std::unordered_map<uint64_t, const TraceEvent*> by_id;
    by_id.reserve(events.size());
    for (const auto& event : events)
        if (event.id != 0)
            by_id.emplace(event.id, &event);

    std::string out;
    out.reserve(events.size() * 128 + counters.size() * 192 +
                flows.size() * 224 + 512);
    out += "{\"displayTimeUnit\":\"ms\",\"schema_version\":";
    out += std::to_string(kObsSchemaVersion);
    out += ",\"otherData\":";
    out += runMetaJson();
    out += ",\"metadata\":{\"droppedEvents\":";
    out += std::to_string(dropped);
    out += ",\"ringCapacity\":";
    out += std::to_string(ring_capacity);
    out += "}";
    // Machine-readable dependency edges: betty_report critpath reads
    // these; the ph "s"/"f" pairs below are only for Perfetto arrows.
    out += ",\"flows\":[";
    for (size_t i = 0; i < flows.size(); ++i) {
        if (i)
            out += ",";
        out += "{\"from\":";
        out += std::to_string(flows[i].fromSpan);
        out += ",\"to\":";
        out += std::to_string(flows[i].toSpan);
        out += ",\"ts\":";
        out += std::to_string(flows[i].tsUs);
        out += "}";
    }
    out += "]";
    out += ",\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"betty\"}}";
    for (const auto& [lane, name] : lane_names) {
        out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":";
        out += std::to_string(lane);
        out += ",\"args\":{\"name\":\"";
        appendJsonEscaped(out, name);
        out += "\"}}";
    }
    for (const auto& event : events)
        appendSpanEvent(out, event);
    char line[256];
    for (size_t i = 0; i < flows.size(); ++i) {
        const auto from = by_id.find(flows[i].fromSpan);
        const auto to = by_id.find(flows[i].toSpan);
        if (from == by_id.end() || to == by_id.end())
            continue; // endpoint dropped from a ring: no arrow
        const TraceEvent& src = *from->second;
        const TraceEvent& dst = *to->second;
        const int64_t src_ts =
            std::min(flows[i].tsUs, src.startUs + src.durUs);
        const int64_t dst_ts =
            std::max(flows[i].tsUs, dst.startUs);
        std::snprintf(line, sizeof(line),
                      ",{\"name\":\"dep\",\"cat\":\"betty.flow\","
                      "\"ph\":\"s\",\"id\":%zu,\"ts\":%lld,"
                      "\"pid\":1,\"tid\":%d}",
                      i, (long long)src_ts, src.lane);
        out += line;
        std::snprintf(line, sizeof(line),
                      ",{\"name\":\"dep\",\"cat\":\"betty.flow\","
                      "\"ph\":\"f\",\"bp\":\"e\",\"id\":%zu,"
                      "\"ts\":%lld,\"pid\":1,\"tid\":%d}",
                      i, (long long)dst_ts, dst.lane);
        out += line;
    }
    for (const auto& sample : counters) {
        out += ",{\"name\":\"";
        appendJsonEscaped(out, sample.track);
        out += "\",\"cat\":\"betty\",\"ph\":\"C\",\"ts\":";
        out += std::to_string(sample.tsUs);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(sample.lane);
        out += ",\"args\":{";
        bool first_value = true;
        for (const auto& [key, value] : sample.values) {
            if (!first_value)
                out += ",";
            first_value = false;
            out += "\"";
            appendJsonEscaped(out, key);
            out += "\":";
            out += std::to_string(value);
        }
        out += "}}";
    }
    out += "]}";
    return out;
}

bool
Trace::writeChromeTrace(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json = chromeTraceJson();
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

TraceLaneScope::TraceLaneScope(int32_t lane, const std::string& name)
    : previous_(Trace::currentLane())
{
    Trace::setLane(lane, name);
}

TraceLaneScope::~TraceLaneScope()
{
    Trace::setLane(previous_);
}

} // namespace betty::obs
