#include "obs/trace.h"

#include "obs/run_meta.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace betty::obs {

std::atomic<bool> Trace::enabled_{false};

namespace {

/**
 * One thread's event ring. Written lock-free by its owning thread;
 * readers synchronize through the head counter (release on write,
 * acquire on read), so snapshotting after the writer has quiesced —
 * the supported usage — observes every event.
 */
struct ThreadBuffer
{
    explicit ThreadBuffer(size_t capacity) : ring(capacity) {}

    std::vector<TraceEvent> ring;
    /** Total events ever recorded; ring index is head % capacity. */
    std::atomic<size_t> head{0};
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::unordered_map<int32_t, std::string> laneNames;
    int32_t nextLane = 0;
    std::atomic<size_t> ringCapacity{1 << 16};

    /** Counter samples (ph="C"): low-rate, so a capped flat vector
     * under the mutex beats per-thread rings. */
    std::vector<CounterSample> counters;
    int64_t droppedCounters = 0;
};

/** Retention cap for counter samples across the process. */
constexpr size_t kMaxCounterSamples = 1 << 16;

Registry&
registry()
{
    static Registry* instance = new Registry; // leaked: outlives threads
    return *instance;
}

thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
thread_local int32_t tls_lane = -1;

ThreadBuffer&
threadBuffer()
{
    if (!tls_buffer) {
        auto& reg = registry();
        auto buffer = std::make_shared<ThreadBuffer>(
            reg.ringCapacity.load(std::memory_order_relaxed));
        std::lock_guard<std::mutex> lock(reg.mutex);
        if (tls_lane < 0)
            tls_lane = reg.nextLane++;
        reg.buffers.push_back(buffer);
        tls_buffer = std::move(buffer);
    }
    return *tls_buffer;
}

void
appendJsonEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

void
Trace::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

int64_t
Trace::nowUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point anchor = Clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - anchor)
        .count();
}

void
Trace::record(const char* name, int64_t start_us, int64_t dur_us)
{
    ThreadBuffer& buffer = threadBuffer();
    const size_t head = buffer.head.load(std::memory_order_relaxed);
    buffer.ring[head % buffer.ring.size()] =
        TraceEvent{name, start_us, dur_us, currentLane()};
    buffer.head.store(head + 1, std::memory_order_release);
}

void
Trace::recordCounter(const char* track,
                     std::vector<std::pair<const char*, int64_t>> values)
{
    if (!enabled())
        return;
    const int64_t ts = nowUs();
    const int32_t lane = currentLane();
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.counters.size() >= kMaxCounterSamples) {
        ++reg.droppedCounters;
        return;
    }
    reg.counters.push_back(
        CounterSample{track, ts, lane, std::move(values)});
}

std::vector<CounterSample>
Trace::counterSnapshot()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.counters;
}

void
Trace::setLane(int32_t lane, const std::string& name)
{
    tls_lane = lane;
    if (!name.empty()) {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.laneNames[lane] = name;
    }
}

int32_t
Trace::currentLane()
{
    if (tls_lane < 0) {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        if (tls_lane < 0)
            tls_lane = reg.nextLane++;
    }
    return tls_lane;
}

void
Trace::setRingCapacity(size_t events)
{
    registry().ringCapacity.store(events > 0 ? events : 1,
                                  std::memory_order_relaxed);
}

std::vector<TraceEvent>
Trace::snapshot()
{
    auto& reg = registry();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    std::vector<TraceEvent> events;
    for (const auto& buffer : buffers) {
        const size_t head =
            buffer->head.load(std::memory_order_acquire);
        const size_t capacity = buffer->ring.size();
        const size_t count = head < capacity ? head : capacity;
        const size_t first = head - count; // oldest retained event
        for (size_t i = 0; i < count; ++i)
            events.push_back(buffer->ring[(first + i) % capacity]);
    }
    return events;
}

int64_t
Trace::droppedEvents()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    int64_t dropped = reg.droppedCounters;
    for (const auto& buffer : reg.buffers) {
        const size_t head =
            buffer->head.load(std::memory_order_acquire);
        if (head > buffer->ring.size())
            dropped += int64_t(head - buffer->ring.size());
    }
    return dropped;
}

void
Trace::clear()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buffer : reg.buffers)
        buffer->head.store(0, std::memory_order_release);
    reg.counters.clear();
    reg.droppedCounters = 0;
}

std::string
Trace::chromeTraceJson()
{
    const auto events = snapshot();
    const auto counters = counterSnapshot();
    std::unordered_map<int32_t, std::string> lane_names;
    {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        lane_names = reg.laneNames;
    }

    std::string out;
    out.reserve(events.size() * 96 + counters.size() * 192 + 512);
    out += "{\"displayTimeUnit\":\"ms\",\"schema_version\":";
    out += std::to_string(kObsSchemaVersion);
    out += ",\"otherData\":";
    out += runMetaJson();
    out += ",\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"betty\"}}";
    for (const auto& [lane, name] : lane_names) {
        out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":";
        out += std::to_string(lane);
        out += ",\"args\":{\"name\":\"";
        appendJsonEscaped(out, name);
        out += "\"}}";
    }
    char line[256];
    for (const auto& event : events) {
        std::string name;
        appendJsonEscaped(name, event.name);
        std::snprintf(line, sizeof(line),
                      ",{\"name\":\"%s\",\"cat\":\"betty\","
                      "\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
                      "\"pid\":1,\"tid\":%d}",
                      name.c_str(), (long long)event.startUs,
                      (long long)event.durUs, event.lane);
        out += line;
    }
    for (const auto& sample : counters) {
        out += ",{\"name\":\"";
        appendJsonEscaped(out, sample.track);
        out += "\",\"cat\":\"betty\",\"ph\":\"C\",\"ts\":";
        out += std::to_string(sample.tsUs);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(sample.lane);
        out += ",\"args\":{";
        bool first_value = true;
        for (const auto& [key, value] : sample.values) {
            if (!first_value)
                out += ",";
            first_value = false;
            out += "\"";
            appendJsonEscaped(out, key);
            out += "\":";
            out += std::to_string(value);
        }
        out += "}}";
    }
    out += "]}";
    return out;
}

bool
Trace::writeChromeTrace(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json = chromeTraceJson();
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

TraceLaneScope::TraceLaneScope(int32_t lane, const std::string& name)
    : previous_(Trace::currentLane())
{
    Trace::setLane(lane, name);
}

TraceLaneScope::~TraceLaneScope()
{
    Trace::setLane(previous_);
}

} // namespace betty::obs
