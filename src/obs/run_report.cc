#include "obs/run_report.h"

#include <cstdio>

#include "obs/residual.h"
#include "obs/run_meta.h"

namespace betty::obs {

namespace {

void
appendJsonEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

void
appendNumber(std::string& out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

void
RunReport::setConfig(const std::string& key, const std::string& value)
{
    for (auto& [existing_key, existing_value] : config_) {
        if (existing_key == key) {
            existing_value = value;
            return;
        }
    }
    config_.emplace_back(key, value);
}

void
RunReport::addEpoch(const RunReportEpoch& epoch)
{
    epochs_.push_back(epoch);
}

std::string
RunReport::toJson() const
{
    std::string out = "{\n";
    out += "  \"schema_version\": " +
           std::to_string(kObsSchemaVersion) + ",\n";

    out += "  \"meta\": " + runMetaJson() + ",\n";

    out += "  \"binary\": \"";
    appendJsonEscaped(out, binary_);
    out += "\",\n";

    out += "  \"dataset\": {\"name\": \"";
    appendJsonEscaped(out, datasetName_);
    out += "\", \"nodes\": " + std::to_string(datasetNodes_);
    out += ", \"edges\": " + std::to_string(datasetEdges_);
    out += ", \"classes\": " + std::to_string(datasetClasses_);
    out += ", \"feature_dim\": " + std::to_string(datasetFeatureDim_);
    out += "},\n";

    out += "  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
        out += i ? ", \"" : "\"";
        appendJsonEscaped(out, config_[i].first);
        out += "\": \"";
        appendJsonEscaped(out, config_[i].second);
        out += "\"";
    }
    out += "},\n";

    out += "  \"epochs\": [";
    for (size_t i = 0; i < epochs_.size(); ++i) {
        const RunReportEpoch& epoch = epochs_[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"epoch\": " + std::to_string(epoch.epoch);
        out += ", \"k\": " + std::to_string(epoch.k);
        out += ", \"loss\": ";
        appendNumber(out, epoch.loss);
        out += ", \"accuracy\": ";
        appendNumber(out, epoch.accuracy);
        out += ", \"test_accuracy\": ";
        appendNumber(out, epoch.testAccuracy);
        out += ", \"peak_bytes\": " + std::to_string(epoch.peakBytes);
        out += ", \"compute_seconds\": ";
        appendNumber(out, epoch.computeSeconds);
        out += ", \"transfer_seconds\": ";
        appendNumber(out, epoch.transferSeconds);
        out += ", \"oom\": ";
        out += epoch.oom ? "true" : "false";
        out += "}";
    }
    out += epochs_.empty() ? "],\n" : "\n  ],\n";

    out += "  \"summary\": {";
    out += "\"peak_bytes\": " + std::to_string(peakBytes_);
    out += ", \"total_compute_seconds\": ";
    appendNumber(out, totalComputeSeconds_);
    out += ", \"total_transfer_seconds\": ";
    appendNumber(out, totalTransferSeconds_);
    out += ", \"final_test_accuracy\": ";
    appendNumber(out, finalTestAccuracy_);
    out += ", \"edge_cut\": " + std::to_string(edgeCut_);
    out += ", \"transfer_bytes\": " + std::to_string(transferBytes_);
    out += ", \"oom_events\": " + std::to_string(oomEvents_);
    out += "},\n";

    if (hasRecovery_) {
        out += "  \"recovery\": {";
        out += "\"faults_active\": ";
        out += recovery_.faultsActive ? "true" : "false";
        out += ", \"replans\": " + std::to_string(recovery_.replans);
        out += ", \"oom_retries\": " +
               std::to_string(recovery_.oomRetries);
        out += ", \"transfer_retries\": " +
               std::to_string(recovery_.transferRetries);
        out += ", \"batches_skipped\": " +
               std::to_string(recovery_.batchesSkipped);
        out += ", \"corrupt_rows_repaired\": " +
               std::to_string(recovery_.corruptRowsRepaired);
        out += ", \"faults_injected\": " +
               std::to_string(recovery_.faultsInjected);
        out += ", \"retry_failures\": " +
               std::to_string(recovery_.retryFailures);
        out += ", \"retry_backoff_us\": " +
               std::to_string(recovery_.retryBackoffUs);
        out += ", \"retry_exhausted\": " +
               std::to_string(recovery_.retryExhausted);
        out += "},\n";
    }

    out += "  \"cache\": {";
    out += "\"enabled\": ";
    out += cache_.enabled ? "true" : "false";
    out += ", \"policy\": \"";
    appendJsonEscaped(out, cache_.policy);
    out += "\", \"capacity_bytes\": " +
           std::to_string(cache_.capacityBytes);
    out += ", \"reserved_bytes\": " +
           std::to_string(cache_.reservedBytes);
    out += ", \"hits\": " + std::to_string(cache_.hits);
    out += ", \"misses\": " + std::to_string(cache_.misses);
    out += ", \"bytes_saved\": " + std::to_string(cache_.bytesSaved);
    out += ", \"evictions\": " + std::to_string(cache_.evictions);
    out += ", \"releases\": " + std::to_string(cache_.releases);
    out += ", \"released_bytes\": " +
           std::to_string(cache_.releasedBytes);
    out += "},\n";

    out += "  \"memory_profile\": " + memProfiler().toJson() + ",\n";
    out += "  \"estimator_residuals\": " + residuals().toJson() + ",\n";

    out += "  \"timeline\": [";
    for (size_t i = 0; i < timeline_.size(); ++i) {
        const MemTimelineSample& sample = timeline_[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"ts_us\": " + std::to_string(sample.tsUs);
        out += ", \"total_live_bytes\": " +
               std::to_string(sample.totalLive);
        out += ", \"categories\": {";
        for (size_t c = 0; c < kMemCategoryCount; ++c) {
            if (c)
                out += ", ";
            out += "\"";
            out += memCategoryName(MemCategory(c));
            out += "\": " + std::to_string(sample.live[c]);
        }
        out += "}}";
    }
    out += timeline_.empty() ? "]\n" : "\n  ]\n";

    out += "}\n";
    return out;
}

bool
RunReport::writeJson(const std::string& path) const
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json = toJson();
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

} // namespace betty::obs
