/**
 * @file
 * Scoped trace spans exported as Chrome trace_event JSON.
 *
 * Betty's performance story is about where time goes — sampling vs.
 * REG construction vs. K-way partitioning vs. transfer vs. compute
 * (paper §4.3–§4.4) — so the hot paths are bracketed with
 * BETTY_TRACE_SPAN("phase/name") markers. Each span records into a
 * per-thread ring buffer; Trace::writeChromeTrace() merges the buffers
 * into a JSON file that chrome://tracing or https://ui.perfetto.dev
 * can open directly.
 *
 * Cost model: collection is off by default, and a disabled span costs
 * exactly one relaxed atomic load and branch in its constructor (no
 * allocation, no lock, no clock read) — cheap enough to leave in
 * per-micro-batch and per-partition-phase code permanently. When
 * enabled, recording is lock-free: each thread appends to its own
 * fixed-capacity ring (oldest events are overwritten once full, and
 * counted as dropped).
 *
 * Simulated devices execute serially on one OS thread; TraceLaneScope
 * reassigns the lane ("tid" in the Chrome JSON) so each device still
 * gets its own swimlane in the viewer.
 */
#ifndef BETTY_OBS_TRACE_H
#define BETTY_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace betty::obs {

/** One completed span, timestamps in microseconds since trace start. */
struct TraceEvent
{
    /** Span label; must point at storage that outlives the trace
     * (string literals in practice). */
    const char* name = nullptr;

    /** Start time, microseconds since the process time anchor. */
    int64_t startUs = 0;

    /** Duration in microseconds. */
    int64_t durUs = 0;

    /** Swimlane ("tid" in the exported JSON): the recording thread's
     * ordinal, unless overridden by TraceLaneScope. */
    int32_t lane = 0;
};

/**
 * One multi-value counter sample (Chrome ph="C" event). Perfetto
 * renders each track as a stacked area chart with one band per value
 * key — the per-category memory lanes of docs/OBSERVABILITY.md.
 */
struct CounterSample
{
    /** Track label; string literal (stored by pointer, like spans). */
    const char* track = nullptr;

    /** Sample time, microseconds since the process time anchor. */
    int64_t tsUs = 0;

    /** Swimlane the sample belongs to (device lane in practice). */
    int32_t lane = 0;

    /** (key literal, value) pairs plotted as stacked bands. */
    std::vector<std::pair<const char*, int64_t>> values;
};

/** Process-wide trace collector (all methods are static). */
class Trace
{
  public:
    /** True if spans are being recorded. Hot-path gate. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn collection on or off (off drops nothing already recorded). */
    static void setEnabled(bool on);

    /** Microseconds since the process time anchor (first use). */
    static int64_t nowUs();

    /** Append one completed span for the calling thread. */
    static void record(const char* name, int64_t start_us,
                       int64_t dur_us);

    /**
     * Append one counter sample for track @p track (a literal) at
     * the current time on the calling thread's lane. No-op while
     * disabled; samples beyond the retention cap are counted as
     * dropped.
     */
    static void
    recordCounter(const char* track,
                  std::vector<std::pair<const char*, int64_t>> values);

    /** All retained counter samples, in record order. */
    static std::vector<CounterSample> counterSnapshot();

    /**
     * Override the calling thread's lane id (and optionally give the
     * lane a display name). Prefer TraceLaneScope for scoped use.
     */
    static void setLane(int32_t lane, const std::string& name = "");

    /** The calling thread's current lane id. */
    static int32_t currentLane();

    /**
     * Ring capacity (events) for buffers of threads that have not
     * recorded yet; existing buffers keep their capacity.
     */
    static void setRingCapacity(size_t events);

    /** All retained events from every thread, oldest first per lane. */
    static std::vector<TraceEvent> snapshot();

    /** Events overwritten because a ring filled up, across threads. */
    static int64_t droppedEvents();

    /**
     * Drop all recorded events (buffers stay registered). Only call
     * while no other thread is recording.
     */
    static void clear();

    /** The merged trace as a Chrome trace_event JSON document. */
    static std::string chromeTraceJson();

    /** Write chromeTraceJson() to @p path; returns success. */
    static bool writeChromeTrace(const std::string& path);

  private:
    static std::atomic<bool> enabled_;
};

/** RAII span: records [construction, destruction) when tracing is on. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char* name)
    {
        if (Trace::enabled()) {
            name_ = name;
            start_ = Trace::nowUs();
        }
    }

    ~TraceSpan()
    {
        if (name_)
            Trace::record(name_, start_, Trace::nowUs() - start_);
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    const char* name_ = nullptr;
    int64_t start_ = 0;
};

/** RAII lane override: spans on this thread land in lane @p lane until
 * the scope ends (used to give each simulated device a swimlane). */
class TraceLaneScope
{
  public:
    TraceLaneScope(int32_t lane, const std::string& name = "");
    ~TraceLaneScope();

    TraceLaneScope(const TraceLaneScope&) = delete;
    TraceLaneScope& operator=(const TraceLaneScope&) = delete;

  private:
    int32_t previous_;
};

#define BETTY_OBS_CONCAT2(a, b) a##b
#define BETTY_OBS_CONCAT(a, b) BETTY_OBS_CONCAT2(a, b)

/** Trace the enclosing scope as a span named @p name (a literal). */
#define BETTY_TRACE_SPAN(name)                                   \
    ::betty::obs::TraceSpan BETTY_OBS_CONCAT(betty_trace_span_,  \
                                             __LINE__)(name)

} // namespace betty::obs

#endif // BETTY_OBS_TRACE_H
