/**
 * @file
 * Scoped trace spans exported as Chrome trace_event JSON.
 *
 * Betty's performance story is about where time goes — sampling vs.
 * REG construction vs. K-way partitioning vs. transfer vs. compute
 * (paper §4.3–§4.4) — so the hot paths are bracketed with
 * BETTY_TRACE_SPAN("phase/name") markers. Each span records into a
 * per-thread ring buffer; Trace::writeChromeTrace() merges the buffers
 * into a JSON file that chrome://tracing or https://ui.perfetto.dev
 * can open directly.
 *
 * Spans additionally carry a process-unique id, an optional category
 * tag ("compute", "transfer", ...), and may be connected by explicit
 * dependency (flow) edges recorded with Trace::recordFlow() — the raw
 * material obs/critpath/ builds its span dependency DAG and
 * critical-path attribution from. Flow edges are emitted only where a
 * dependency is real: thread-pool task spawn and join, the trainer's
 * prefetch(k+1) -> compute(k) pipeline handoff, micro-batch ordering
 * within an epoch, and resilient-trainer replan boundaries.
 *
 * Cost model: collection is off by default, and a disabled span costs
 * exactly one relaxed atomic load and branch in its constructor (no
 * allocation, no lock, no clock read) — cheap enough to leave in
 * per-micro-batch and per-partition-phase code permanently. When
 * enabled, recording is lock-free: each thread appends to its own
 * fixed-capacity ring (oldest events are overwritten once full, and
 * counted as dropped). Ring capacity comes from BETTY_TRACE_RING
 * (util/env_config.h) unless overridden with setRingCapacity().
 *
 * Simulated devices execute serially on one OS thread; TraceLaneScope
 * reassigns the lane ("tid" in the Chrome JSON) so each device still
 * gets its own swimlane in the viewer.
 */
#ifndef BETTY_OBS_TRACE_H
#define BETTY_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace betty::obs {

/** One completed span, timestamps in microseconds since trace start. */
struct TraceEvent
{
    /** Span label; must point at storage that outlives the trace
     * (string literals in practice). */
    const char* name = nullptr;

    /** Attribution category ("compute", "transfer", "gather",
     * "sample", "partition", "stall"); nullptr = uncategorized.
     * String literal, stored by pointer like @ref name. */
    const char* category = nullptr;

    /** Process-unique span id (never 0 for recorded spans); flow
     * edges reference spans by this id. */
    uint64_t id = 0;

    /** Start time, microseconds since the process time anchor. */
    int64_t startUs = 0;

    /** Duration in microseconds. */
    int64_t durUs = 0;

    /** Swimlane ("tid" in the exported JSON): the recording thread's
     * ordinal, unless overridden by TraceLaneScope. */
    int32_t lane = 0;
};

/**
 * One dependency (flow) edge between two spans: work recorded as span
 * @ref toSpan could not proceed past @ref tsUs until span @ref
 * fromSpan had reached it (task spawn, pipeline handoff, join,
 * ordering). Exported in the Chrome JSON both as a top-level "flows"
 * array (machine-readable, for betty_report critpath) and as ph
 * "s"/"f" event pairs (Perfetto arrows).
 */
struct FlowEdge
{
    /** Producing span's id. */
    uint64_t fromSpan = 0;

    /** Consuming span's id. */
    uint64_t toSpan = 0;

    /** When the dependency bound, microseconds since the process time
     * anchor: spawn time for spawn edges, wait-return time for
     * join/handoff edges. */
    int64_t tsUs = 0;
};

/**
 * One multi-value counter sample (Chrome ph="C" event). Perfetto
 * renders each track as a stacked area chart with one band per value
 * key — the per-category memory lanes of docs/OBSERVABILITY.md.
 */
struct CounterSample
{
    /** Track label; string literal (stored by pointer, like spans). */
    const char* track = nullptr;

    /** Sample time, microseconds since the process time anchor. */
    int64_t tsUs = 0;

    /** Swimlane the sample belongs to (device lane in practice). */
    int32_t lane = 0;

    /** (key literal, value) pairs plotted as stacked bands. */
    std::vector<std::pair<const char*, int64_t>> values;
};

/** Process-wide trace collector (all methods are static). */
class Trace
{
  public:
    /** True if spans are being recorded. Hot-path gate. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn collection on or off (off drops nothing already recorded). */
    static void setEnabled(bool on);

    /** Microseconds since the process time anchor (first use). */
    static int64_t nowUs();

    /** Append one completed span for the calling thread (fresh id,
     * no category). Prefer TraceSpan for scoped use. */
    static void record(const char* name, int64_t start_us,
                       int64_t dur_us);

    /**
     * Open a span on the calling thread: allocates a fresh id and
     * pushes it (with @p category, a literal or nullptr) on the
     * thread's open-span stack so nested spans (and recordFlow
     * callers) can see it via currentSpanId().
     */
    static uint64_t beginSpan(const char* category = nullptr);

    /** Close the span opened by the matching beginSpan(): pops the
     * open-span stack and records the completed event. */
    static void endSpan(const char* name, const char* category,
                        uint64_t id, int64_t start_us, int64_t dur_us);

    /** Id of the innermost open TraceSpan on this thread (0 if none —
     * including whenever tracing is disabled). */
    static uint64_t currentSpanId();

    /** Category of the innermost open span that has one (nullptr if
     * none). Lets spawned pool work inherit its caller's category. */
    static const char* currentSpanCategory();

    /**
     * Record a dependency edge @p from_span -> @p to_span binding at
     * @p ts_us (default: now). No-op while disabled or when either id
     * is 0; edges beyond the retention cap are counted as dropped.
     */
    static void recordFlow(uint64_t from_span, uint64_t to_span,
                           int64_t ts_us = -1);

    /** All retained flow edges, in record order. */
    static std::vector<FlowEdge> flowSnapshot();

    /**
     * Append one counter sample for track @p track (a literal) at
     * the current time on the calling thread's lane. No-op while
     * disabled; samples beyond the retention cap are counted as
     * dropped.
     */
    static void
    recordCounter(const char* track,
                  std::vector<std::pair<const char*, int64_t>> values);

    /** All retained counter samples, in record order. */
    static std::vector<CounterSample> counterSnapshot();

    /**
     * Override the calling thread's lane id (and optionally give the
     * lane a display name). Prefer TraceLaneScope for scoped use.
     */
    static void setLane(int32_t lane, const std::string& name = "");

    /** The calling thread's current lane id. */
    static int32_t currentLane();

    /** Name the calling thread's current lane (thread_name metadata
     * in the exported JSON) without changing its id. */
    static void nameCurrentLane(const std::string& name);

    /**
     * Ring capacity (events) for buffers of threads that have not
     * recorded yet; existing buffers keep their capacity. Overrides
     * the BETTY_TRACE_RING environment default.
     */
    static void setRingCapacity(size_t events);

    /** All retained events from every thread, oldest first per lane. */
    static std::vector<TraceEvent> snapshot();

    /** Events (spans, counter samples, flow edges) lost to retention
     * caps, across threads. Raise BETTY_TRACE_RING when nonzero. */
    static int64_t droppedEvents();

    /**
     * Drop all recorded events, counters, and flow edges (buffers
     * stay registered). Only call while no other thread is recording.
     */
    static void clear();

    /** The merged trace as a Chrome trace_event JSON document. */
    static std::string chromeTraceJson();

    /** Write chromeTraceJson() to @p path; returns success. */
    static bool writeChromeTrace(const std::string& path);

  private:
    static std::atomic<bool> enabled_;
};

/** RAII span: records [construction, destruction) when tracing is on. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char* name,
                       const char* category = nullptr)
    {
        if (Trace::enabled()) {
            name_ = name;
            category_ = category;
            id_ = Trace::beginSpan(category);
            start_ = Trace::nowUs();
        }
    }

    ~TraceSpan()
    {
        if (name_)
            Trace::endSpan(name_, category_, id_, start_,
                           Trace::nowUs() - start_);
    }

    /** This span's process-unique id (0 when tracing was disabled at
     * construction) — the handle Trace::recordFlow() edges use. */
    uint64_t
    id() const
    {
        return id_;
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    const char* name_ = nullptr;
    const char* category_ = nullptr;
    uint64_t id_ = 0;
    int64_t start_ = 0;
};

/** RAII lane override: spans on this thread land in lane @p lane until
 * the scope ends (used to give each simulated device a swimlane). */
class TraceLaneScope
{
  public:
    TraceLaneScope(int32_t lane, const std::string& name = "");
    ~TraceLaneScope();

    TraceLaneScope(const TraceLaneScope&) = delete;
    TraceLaneScope& operator=(const TraceLaneScope&) = delete;

  private:
    int32_t previous_;
};

#define BETTY_OBS_CONCAT2(a, b) a##b
#define BETTY_OBS_CONCAT(a, b) BETTY_OBS_CONCAT2(a, b)

/** Trace the enclosing scope as a span named @p name (a literal). */
#define BETTY_TRACE_SPAN(name)                                   \
    ::betty::obs::TraceSpan BETTY_OBS_CONCAT(betty_trace_span_,  \
                                             __LINE__)(name)

/** Trace the enclosing scope as a span named @p name carrying
 * attribution category @p category (both literals). */
#define BETTY_TRACE_SPAN_CAT(name, category)                     \
    ::betty::obs::TraceSpan BETTY_OBS_CONCAT(betty_trace_span_,  \
                                             __LINE__)(name, category)

} // namespace betty::obs

#endif // BETTY_OBS_TRACE_H
