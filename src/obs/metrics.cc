#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "obs/memprof.h"
#include "obs/residual.h"
#include "obs/run_meta.h"

namespace betty::obs {

std::atomic<bool> Metrics::enabled_{false};

namespace {

/**
 * Name -> metric maps. std::map keeps the JSON export sorted, which
 * makes snapshots diffable. Values are never erased, so references
 * handed out by the accessors stay valid for the process lifetime.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry&
registry()
{
    static Registry* instance = new Registry; // leaked: outlives threads
    return *instance;
}

/** Default histogram layout: exponential seconds, 1us .. ~100s. */
std::vector<double>
defaultSecondsBounds()
{
    std::vector<double> bounds;
    for (double b = 1e-6; b < 200.0; b *= 4.0)
        bounds.push_back(b);
    return bounds;
}

void
appendNumber(std::string& out, double value)
{
    char buf[64];
    // %.17g round-trips doubles; integers print without a point.
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
}

void
Histogram::observeSlow(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    counts_[size_t(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
    }
}

int64_t
Histogram::bucketCount(size_t index) const
{
    return counts_[index].load(std::memory_order_relaxed);
}

int64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::percentile(double q) const
{
    const int64_t total = count();
    if (total <= 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // The (fractional) rank the quantile lands on, 1-based so a
    // bucket holding observations [c_before+1, c_before+n] covers
    // ranks in that closed interval.
    const double rank = q * double(total - 1) + 1.0;
    int64_t cumulative = 0;
    for (size_t i = 0; i < bounds_.size(); ++i) {
        const int64_t in_bucket = bucketCount(i);
        if (in_bucket <= 0)
            continue;
        if (double(cumulative + in_bucket) >= rank) {
            // Linear interpolation across the bucket's value span.
            const double lower =
                i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
            const double upper = bounds_[i];
            const double into =
                (rank - double(cumulative)) / double(in_bucket);
            return lower + (upper - lower) * std::min(1.0, into);
        }
        cumulative += in_bucket;
    }
    // Rank lands in the overflow bucket: no upper edge to
    // interpolate toward, so report the last finite bound.
    return bounds_.empty() ? 0.0 : bounds_.back();
}

bool
Histogram::bucketsConsistent() const
{
    int64_t bucket_total = 0;
    for (size_t i = 0; i <= bounds_.size(); ++i)
        bucket_total += bucketCount(i);
    return bucket_total == count();
}

void
Histogram::reset()
{
    for (auto& bucket : counts_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

void
Metrics::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

Counter&
Metrics::counter(const std::string& name)
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto& slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
Metrics::gauge(const std::string& name)
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto& slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
Metrics::histogram(const std::string& name,
                   std::vector<double> bounds)
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto& slot = reg.histograms[name];
    if (!slot) {
        if (bounds.empty())
            bounds = defaultSecondsBounds();
        slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

std::vector<std::string>
Metrics::histogramNames()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.histograms.size());
    for (const auto& [name, histogram] : reg.histograms)
        names.push_back(name);
    return names;
}

void
Metrics::reset()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, counter] : reg.counters)
        counter->reset();
    for (auto& [name, gauge] : reg.gauges)
        gauge->reset();
    for (auto& [name, histogram] : reg.histograms)
        histogram->reset();
    residuals().reset();
    memProfiler().reset();
}

std::string
Metrics::snapshotJson()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);

    std::string out = "{\n  \"schema_version\": " +
                      std::to_string(kObsSchemaVersion) + ",\n";
    out += "  \"meta\": " + runMetaJson() + ",\n";
    out += "  \"counters\": {";
    bool first = true;
    for (const auto& [name, counter] : reg.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": ";
        out += std::to_string(counter->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : reg.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": ";
        out += std::to_string(gauge->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : reg.histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"bounds\": [";
        const auto& bounds = histogram->bounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
            if (i)
                out += ", ";
            appendNumber(out, bounds[i]);
        }
        out += "], \"counts\": [";
        for (size_t i = 0; i <= bounds.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(histogram->bucketCount(i));
        }
        out += "], \"count\": " + std::to_string(histogram->count());
        out += ", \"sum\": ";
        appendNumber(out, histogram->sum());
        out += ", \"p50\": ";
        appendNumber(out, histogram->percentile(0.50));
        out += ", \"p95\": ";
        appendNumber(out, histogram->percentile(0.95));
        out += ", \"p99\": ";
        appendNumber(out, histogram->percentile(0.99));
        out += ", \"count_consistent\": ";
        out += histogram->bucketsConsistent() ? "true" : "false";
        out += "}";
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"estimator_residuals\": " + residuals().toJson();
    out += ",\n  \"memory_profile\": " + memProfiler().toJson();
    out += "\n}\n";
    return out;
}

bool
Metrics::writeJson(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json = snapshotJson();
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

} // namespace betty::obs
