/**
 * @file
 * Structured run-report manifest (train_cli --memprof-out=FILE).
 *
 * One training run, one JSON artifact: dataset + config echo,
 * per-epoch stats (K, loss, accuracy, peak bytes, compute/transfer
 * seconds, OOM), the per-micro-batch Table 3 category breakdown from
 * obs/memprof.h, per-component estimator residuals, the sampled
 * per-category live-bytes timeline, and summary figures (peak bytes,
 * edge cut, transfer bytes, OOM episodes). betty_report (tools/)
 * prints one report as a table and diffs two with thresholds, so
 * every run leaves a comparable artifact — the regression gate the
 * BENCH trajectory needs.
 */
#ifndef BETTY_OBS_RUN_REPORT_H
#define BETTY_OBS_RUN_REPORT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/memprof.h"

namespace betty::obs {

/** One epoch's row in the report. */
struct RunReportEpoch
{
    int64_t epoch = 0;
    int64_t k = 1;           ///< micro-batches per mini-batch
    double loss = 0.0;
    double accuracy = 0.0;     ///< train accuracy
    double testAccuracy = 0.0;
    int64_t peakBytes = 0;     ///< device peak during the epoch
    double computeSeconds = 0.0;
    double transferSeconds = 0.0;
    bool oom = false;
};

/**
 * The run's recovery activity (robustness/resilient_trainer.h).
 * Serialized as an OPTIONAL, additive "recovery" section — older
 * reports without it still parse, so the schema version stays put.
 */
struct RunReportRecovery
{
    int64_t replans = 0;
    int64_t oomRetries = 0;
    int64_t transferRetries = 0;
    int64_t batchesSkipped = 0;
    int64_t corruptRowsRepaired = 0;
    int64_t faultsInjected = 0;

    /** Retry-policy activity (robustness/retry.h): failed transfer
     * attempts absorbed, total simulated backoff charged, and
     * policy-exhaustion events. Fault-free runs must report zero for
     * all three (gated by `betty_report check`), and the backoff can
     * never exceed the link's lifetime transfer seconds. */
    int64_t retryFailures = 0;
    int64_t retryBackoffUs = 0;
    int64_t retryExhausted = 0;

    /** True when a fault plan was installed for this run. When false,
     * betty_report's check mode requires every counter above to be
     * zero (fault-free runs must not silently recover). */
    bool faultsActive = false;
};

/**
 * The run's feature-cache activity (cache/feature_cache.h).
 * ALWAYS serialized (schema v3): an uncached run carries the section
 * with enabled=false and all counters zero, which betty_report's
 * check mode enforces — a cache must never move bytes it was not
 * configured to have.
 */
struct RunReportCache
{
    /** True when --cache-gib > 0 configured a cache for the run. */
    bool enabled = false;

    /** Replacement policy name ("lru", "lru-pinned"; "none" when
     * disabled). */
    std::string policy = "none";

    int64_t capacityBytes = 0; ///< configured reservation
    int64_t reservedBytes = 0; ///< reservation still held at exit
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t bytesSaved = 0;
    int64_t evictions = 0;
    int64_t releases = 0;      ///< shrink/release events (OOM replan)
    int64_t releasedBytes = 0;
};

/**
 * Collects one run's facts and serializes them as the run-report
 * JSON. The memory_profile and estimator_residuals sections are
 * pulled from the process-wide collectors at toJson() time.
 */
class RunReport
{
  public:
    /** argv[0] (or a logical binary name) for the meta block. */
    void setBinary(const std::string& name) { binary_ = name; }

    void
    setDataset(const std::string& name, int64_t nodes, int64_t edges,
               int64_t classes, int64_t feature_dim)
    {
        datasetName_ = name;
        datasetNodes_ = nodes;
        datasetEdges_ = edges;
        datasetClasses_ = classes;
        datasetFeatureDim_ = feature_dim;
    }

    /** Echo one config knob (flag name -> value as text). */
    void setConfig(const std::string& key, const std::string& value);

    void addEpoch(const RunReportEpoch& epoch);

    /** The device's sampled per-category timeline. */
    void setTimeline(std::vector<MemTimelineSample> timeline)
    {
        timeline_ = std::move(timeline);
    }

    /** @name Run-level summary figures */
    /** @{ */
    void setPeakBytes(int64_t bytes) { peakBytes_ = bytes; }
    void setEdgeCut(int64_t cut) { edgeCut_ = cut; }
    void setTransferBytes(int64_t bytes) { transferBytes_ = bytes; }
    void setOomEvents(int64_t events) { oomEvents_ = events; }
    void setFinalTestAccuracy(double acc) { finalTestAccuracy_ = acc; }
    void setTotalComputeSeconds(double s) { totalComputeSeconds_ = s; }
    void setTotalTransferSeconds(double s)
    {
        totalTransferSeconds_ = s;
    }
    /** @} */

    /** Attach the recovery section (emitted only when set). */
    void
    setRecovery(const RunReportRecovery& recovery)
    {
        recovery_ = recovery;
        hasRecovery_ = true;
    }

    /** Fill the (always-emitted) cache section. */
    void setCache(const RunReportCache& cache) { cache_ = cache; }

    /** The complete report as a JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path; returns success. */
    bool writeJson(const std::string& path) const;

  private:
    std::string binary_;
    std::string datasetName_;
    int64_t datasetNodes_ = 0;
    int64_t datasetEdges_ = 0;
    int64_t datasetClasses_ = 0;
    int64_t datasetFeatureDim_ = 0;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<RunReportEpoch> epochs_;
    std::vector<MemTimelineSample> timeline_;
    int64_t peakBytes_ = 0;
    int64_t edgeCut_ = 0;
    int64_t transferBytes_ = 0;
    int64_t oomEvents_ = 0;
    double finalTestAccuracy_ = 0.0;
    double totalComputeSeconds_ = 0.0;
    double totalTransferSeconds_ = 0.0;
    RunReportRecovery recovery_;
    bool hasRecovery_ = false;
    RunReportCache cache_;
};

} // namespace betty::obs

#endif // BETTY_OBS_RUN_REPORT_H
