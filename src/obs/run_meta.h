/**
 * @file
 * Export schema version and per-run metadata.
 *
 * Every observability artifact (trace JSON, metrics snapshot, run
 * report) carries "schema_version" plus a "meta" object — binary
 * name, ISO-8601 wall-clock timestamp, and whatever dataset/config
 * key-value pairs the producing binary registered — so betty_report
 * can refuse to diff artifacts whose layouts do not match and can
 * label what a report actually measured.
 */
#ifndef BETTY_OBS_RUN_META_H
#define BETTY_OBS_RUN_META_H

#include <cstdint>
#include <string>

namespace betty::obs {

/**
 * Version of every obs JSON export layout. Bump when a field is
 * renamed, removed, or changes meaning (additions are compatible and
 * do not require a bump). betty_report refuses to diff reports whose
 * versions differ.
 *
 * History: 1 = PR 1 trace/metrics layout (implicit, no version
 * field); 2 = adds schema_version + meta everywhere, memory_profile
 * in the metrics snapshot, counter events in the trace; 3 = adds the
 * feature_cache memory category (renumbering uncategorized) and the
 * "cache" run-report section.
 */
constexpr int64_t kObsSchemaVersion = 3;

/** Register one run-metadata key (e.g. "dataset", "config.k").
 * Later writes to the same key overwrite. */
void setRunMeta(const std::string& key, const std::string& value);

/** Drop every registered key except the implicit timestamp. */
void clearRunMeta();

/**
 * The metadata as one JSON object: all registered keys plus
 * "timestamp" (ISO-8601 UTC, captured at call time).
 */
std::string runMetaJson();

} // namespace betty::obs

#endif // BETTY_OBS_RUN_META_H
