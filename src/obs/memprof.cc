#include "obs/memprof.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace betty::obs {

namespace {

/** Fixed-depth thread-local category stack. Deep enough for every
 * legitimate nesting (trainer > model > layer > aggregator); overflow
 * pushes are counted and ignored so pop stays balanced. */
constexpr size_t kMaxDepth = 32;

struct CategoryStack
{
    std::array<MemCategory, kMaxDepth> entries;
    size_t depth = 0;
    size_t overflow = 0;
};

thread_local CategoryStack tls_stack;

const char* const kCategoryNames[kMemCategoryCount] = {
    "parameters",    "input_features", "labels",
    "blocks",        "hidden",         "aggregator",
    "gradients",     "optimizer_state", "feature_cache",
    "uncategorized",
};

} // namespace

const char*
memCategoryName(MemCategory category)
{
    const auto index = size_t(category);
    BETTY_ASSERT(index < kMemCategoryCount, "bad MemCategory");
    return kCategoryNames[index];
}

MemCategory
currentMemCategory()
{
    const CategoryStack& stack = tls_stack;
    if (stack.depth == 0)
        return MemCategory::Uncategorized;
    return stack.entries[stack.depth - 1];
}

namespace detail {

void
pushMemCategory(MemCategory category)
{
    CategoryStack& stack = tls_stack;
    if (stack.depth >= kMaxDepth) {
        ++stack.overflow;
        BETTY_WARN_ONCE("MemCategoryScope nesting exceeds ", kMaxDepth,
                        "; allocations keep the enclosing category");
        return;
    }
    stack.entries[stack.depth++] = category;
}

void
popMemCategory()
{
    CategoryStack& stack = tls_stack;
    if (stack.overflow > 0) {
        --stack.overflow;
        return;
    }
    BETTY_ASSERT(stack.depth > 0, "unbalanced MemCategoryScope pop");
    --stack.depth;
}

} // namespace detail

void
MemProfiler::record(const MicroBatchMemRecord& record)
{
    if (!Metrics::enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
}

std::vector<MicroBatchMemRecord>
MemProfiler::records() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

void
MemProfiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
}

std::string
MemProfiler::toJson() const
{
    const auto records = this->records();

    std::string out = "{\"micro_batches\": [";
    for (size_t i = 0; i < records.size(); ++i) {
        const MicroBatchMemRecord& record = records[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"index\": " + std::to_string(i);
        out += ", \"actual_peak_bytes\": " +
               std::to_string(record.actualTotalPeak);
        out += ", \"predicted_peak_bytes\": " +
               std::to_string(record.predictedTotalPeak);
        out += ", \"categories\": {";
        for (size_t c = 0; c < kMemCategoryCount; ++c) {
            if (c)
                out += ", ";
            const int64_t predicted = record.predicted[c];
            const int64_t actual = record.actualPeak[c];
            out += "\"";
            out += kCategoryNames[c];
            out += "\": {\"predicted_bytes\": " +
                   std::to_string(predicted);
            out += ", \"actual_bytes\": " + std::to_string(actual);
            out += ", \"residual_bytes\": " +
                   std::to_string(predicted - actual);
            out += "}";
        }
        out += "}}";
    }
    out += records.empty() ? "]" : "\n  ]";

    // Worst (max) measured peak per category across micro-batches:
    // the number a budget has to accommodate.
    out += ", \"category_peaks\": {";
    for (size_t c = 0; c < kMemCategoryCount; ++c) {
        int64_t worst = 0;
        for (const MicroBatchMemRecord& record : records)
            if (record.actualPeak[c] > worst)
                worst = record.actualPeak[c];
        if (c)
            out += ", ";
        out += "\"";
        out += kCategoryNames[c];
        out += "\": " + std::to_string(worst);
    }
    out += "}}";
    return out;
}

MemProfiler&
memProfiler()
{
    static MemProfiler* instance = new MemProfiler; // leaked: outlives threads
    return *instance;
}

} // namespace betty::obs
