/**
 * @file
 * Estimator-residual telemetry: predicted vs. actual peak bytes per
 * micro-batch.
 *
 * The memory-aware planner sizes K from estimateBatchMemory() alone
 * (paper §4.4.3, Table 3); if the analytical model drifts from what
 * the device actually allocates, the planner under- or over-splits
 * silently. The trainer records one (predicted, actual) pair per
 * micro-batch here, so model drift is a queryable metric — exported
 * inside the metrics JSON as "estimator_residuals" — instead of a
 * silent modeling error.
 *
 * Recording is gated on Metrics::enabled() like every collector:
 * disabled cost is one branch at the call site (callers also skip
 * computing the estimate itself when disabled).
 */
#ifndef BETTY_OBS_RESIDUAL_H
#define BETTY_OBS_RESIDUAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace betty::obs {

/** One micro-batch's predicted vs. measured peak. */
struct ResidualEntry
{
    /** Estimator's peak-bytes prediction for the micro-batch. */
    int64_t predictedBytes = 0;

    /** Measured peak bytes while training that micro-batch. */
    int64_t actualBytes = 0;

    /** predicted - actual (positive = overestimate). */
    int64_t residualBytes() const
    {
        return predictedBytes - actualBytes;
    }

    /** residual / actual; 0 when actual is 0. */
    double
    relativeError() const
    {
        if (actualBytes == 0)
            return 0.0;
        return double(residualBytes()) / double(actualBytes);
    }
};

/** Aggregate view of the recorded residuals. */
struct ResidualSummary
{
    int64_t count = 0;

    /** Mean |predicted - actual| in bytes. */
    double meanAbsBytes = 0.0;

    /** Mean |relative error| (entries with actual == 0 excluded). */
    double meanAbsRelative = 0.0;

    /** Largest |relative error|. */
    double maxAbsRelative = 0.0;

    /** Mean signed relative error: > 0 means the estimator
     * systematically overestimates. */
    double bias = 0.0;
};

/** Thread-safe accumulator of estimator residuals. */
class ResidualTracker
{
  public:
    /** Record one micro-batch (no-op while metrics are disabled). */
    void record(int64_t predicted_bytes, int64_t actual_bytes);

    /** Copy of every recorded entry, in record order. */
    std::vector<ResidualEntry> entries() const;

    ResidualSummary summary() const;

    void reset();

    /** JSON object: {"entries": [...], "summary": {...}}. */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<ResidualEntry> entries_;
};

/** The process-wide tracker the trainer records into. */
ResidualTracker& residuals();

} // namespace betty::obs

#endif // BETTY_OBS_RESIDUAL_H
