#include "obs/run_meta.h"

#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>

namespace betty::obs {

namespace {

struct MetaRegistry
{
    std::mutex mutex;
    std::map<std::string, std::string> entries; // sorted => diffable
};

MetaRegistry&
metaRegistry()
{
    static MetaRegistry* instance = new MetaRegistry;
    return *instance;
}

void
appendJsonEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

std::string
isoTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

} // namespace

void
setRunMeta(const std::string& key, const std::string& value)
{
    auto& reg = metaRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.entries[key] = value;
}

void
clearRunMeta()
{
    auto& reg = metaRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.entries.clear();
}

std::string
runMetaJson()
{
    auto& reg = metaRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);

    std::string out = "{\"timestamp\": \"" + isoTimestampUtc() + "\"";
    for (const auto& [key, value] : reg.entries) {
        out += ", \"";
        appendJsonEscaped(out, key);
        out += "\": \"";
        appendJsonEscaped(out, value);
        out += "\"";
    }
    out += "}";
    return out;
}

} // namespace betty::obs
