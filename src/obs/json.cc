#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace betty::obs {

namespace {

/** Cursor over the input with error reporting. */
struct Parser
{
    const std::string& text;
    size_t pos = 0;
    std::string error;

    bool
    fail(const std::string& message)
    {
        if (error.empty())
            error = message + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word, size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += len;
        return true;
    }

    bool
    parseString(std::string& out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                const char esc = text[pos++];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // UTF-8 encode the BMP code point (the exporters
                    // only emit \u for control characters).
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xC0 | (code >> 6));
                        out += char(0x80 | (code & 0x3F));
                    } else {
                        out += char(0xE0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3F));
                        out += char(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue& out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n' || c == 'N' || c == 'i' || c == 'I') {
            // 'n' is ambiguous: null, or strtod's "nan" spelling.
            if (text.compare(pos, 4, "null") == 0) {
                out.kind = JsonValue::Kind::Null;
                pos += 4;
                return true;
            }
            return parseNumber(out);
        }
        return parseNumber(out);
    }

    bool
    parseNumber(JsonValue& out)
    {
        const char* start = text.c_str() + pos;
        char* end = nullptr;
        out.number = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        // Besides JSON numbers, accept strtod's non-finite spellings
        // ("nan", "inf", "-inf", ...): the exporters print doubles
        // with %.17g, which emits exactly those for non-finite values,
        // and the readers (betty_report) must be able to see them to
        // reject them with a typed error instead of a parse crash.
        const char first = *start;
        if (first != '-' &&
            !std::isdigit(static_cast<unsigned char>(first)) &&
            std::isfinite(out.number))
            return fail("expected a value");
        out.kind = JsonValue::Kind::Number;
        pos += size_t(end - start);
        return true;
    }

    bool
    parseArray(JsonValue& out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue& out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace(std::move(key), std::move(value));
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }
};

} // namespace

bool
parseJson(const std::string& text, JsonValue& out, std::string* error)
{
    Parser parser{text, 0, {}};
    if (!parser.parseValue(out)) {
        if (error)
            *error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        parser.fail("trailing characters");
        if (error)
            *error = parser.error;
        return false;
    }
    return true;
}

} // namespace betty::obs
