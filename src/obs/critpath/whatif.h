/**
 * @file
 * COZ-style "virtual speedup" projection: what would the epoch
 * makespan be if one category of work ran N× faster?
 *
 * The model replays the SegmentGraph as a schedule: every segment
 * starts as soon as all its dependencies (same-lane predecessor,
 * bound flow edges) have finished, and runs for its measured duration
 * times the category's scale factor. Segments tagged "stall" are
 * pure synchronization — their modeled duration is zero, because the
 * time they measured is exactly the waiting the dependency edges
 * already express; keeping it as fixed work would stop a faster
 * producer from ever shortening the wait.
 *
 * Because untraced scheduling gaps compress to zero in this replay,
 * the projection is only meaningful relative to the same replay at
 * scale 1.0 (baselineModelUs), never to the measured wall time:
 * speedup = (baseline - projected) / baseline. By construction the
 * projection at scale 1.0 is exactly the baseline (identity), and a
 * smaller scale can only shorten — never lengthen — the makespan
 * (monotonicity); both are property-tested in tests/test_critpath.cc.
 */
#ifndef BETTY_OBS_CRITPATH_WHATIF_H
#define BETTY_OBS_CRITPATH_WHATIF_H

#include <map>
#include <string>

#include "obs/critpath/span_graph.h"

namespace betty::obs::critpath {

/** One requested projection: scale every span of @p category. */
struct WhatIfSpec
{
    std::string category;
    /** Duration multiplier: 0.5 = "2× faster", 1.0 = unchanged. */
    double scale = 1.0;
};

struct WhatIfResult
{
    WhatIfSpec spec;
    /** Modeled makespan with every scale at 1.0 (microseconds). */
    double baselineModelUs = 0.0;
    /** Modeled makespan with the spec applied. */
    double projectedUs = 0.0;
    /** (baseline - projected) / baseline * 100; 0 for empty model. */
    double projectedSpeedupPct = 0.0;
};

/**
 * Modeled makespan of @p segments with per-category duration scales
 * @p scales (categories absent from the map run at 1.0).
 */
double modelMakespanUs(const SpanGraph& graph,
                       const SegmentGraph& segments,
                       const std::map<std::string, double>& scales);

/** Project @p spec against the scale-1.0 baseline (file comment). */
WhatIfResult projectWhatIf(const SpanGraph& graph,
                           const SegmentGraph& segments,
                           const WhatIfSpec& spec);

} // namespace betty::obs::critpath

#endif // BETTY_OBS_CRITPATH_WHATIF_H
