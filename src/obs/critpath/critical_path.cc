#include "obs/critpath/critical_path.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace betty::obs::critpath {

CriticalPathResult
analyzeCriticalPath(const SpanGraph& graph,
                    const SegmentGraph& segments)
{
    CriticalPathResult result;
    if (graph.spans.empty() || segments.segments.empty())
        return result;

    int64_t min_start = graph.spans.front().startUs;
    int64_t max_end = graph.spans.front().endUs();
    for (const GraphSpan& span : graph.spans) {
        min_start = std::min(min_start, span.startUs);
        max_end = std::max(max_end, span.endUs());
    }
    result.wallUs = max_end - min_start;

    // Start at the globally last-ending segment (ties: lowest index,
    // deterministic because segments are (lane, start)-sorted).
    int32_t current = 0;
    for (size_t i = 1; i < segments.segments.size(); ++i)
        if (segments.segments[i].endUs >
            segments.segments[current].endUs)
            current = int32_t(i);

    // Backward walk, collecting (segment, gap-before) pairs.
    struct WalkStep
    {
        int32_t segment;
        int64_t gapBefore;
    };
    std::vector<WalkStep> walk;
    for (;;) {
        // Binding predecessor: the dependency that ended last. Only
        // predecessors that end at or before this segment starts can
        // bind (others did not constrain the measured start).
        const Segment& seg = segments.segments[size_t(current)];
        int32_t binding = -1;
        int64_t binding_end = -1;
        for (int32_t pred : segments.preds[size_t(current)]) {
            const Segment& p = segments.segments[size_t(pred)];
            if (p.endUs > seg.startUs)
                continue;
            if (p.endUs > binding_end) {
                binding_end = p.endUs;
                binding = pred;
            }
        }
        walk.push_back(WalkStep{
            current,
            binding < 0 ? 0 : seg.startUs - binding_end});
        if (binding < 0)
            break;
        current = binding;
    }
    std::reverse(walk.begin(), walk.end());

    // Merge consecutive same-span segments into steps; attribute.
    std::map<std::string, int64_t> category_us;
    for (const WalkStep& step : walk) {
        const Segment& seg = segments.segments[size_t(step.segment)];
        const GraphSpan& span = graph.spans[size_t(seg.spanIndex)];
        if (step.gapBefore > 0)
            category_us["stall"] += step.gapBefore;
        category_us[spanCategory(span)] += seg.durUs();
        if (!result.steps.empty() &&
            result.steps.back().spanIndex == seg.spanIndex &&
            step.gapBefore == 0) {
            result.steps.back().endUs = seg.endUs;
        } else {
            PathStep out;
            out.spanIndex = seg.spanIndex;
            out.startUs = seg.startUs;
            out.endUs = seg.endUs;
            out.stallBeforeUs = step.gapBefore;
            result.steps.push_back(out);
        }
    }

    const Segment& first =
        segments.segments[size_t(walk.front().segment)];
    const Segment& last =
        segments.segments[size_t(walk.back().segment)];
    result.cpUs = last.endUs - first.startUs;

    for (const PathStep& step : result.steps)
        result.longestStepUs = std::max(
            result.longestStepUs, step.endUs - step.startUs);

    for (const auto& [category, us] : category_us) {
        CategoryShare share;
        share.category = category;
        share.us = us;
        share.share =
            result.cpUs > 0 ? double(us) / double(result.cpUs) : 0.0;
        result.categories.push_back(std::move(share));
    }
    std::sort(result.categories.begin(), result.categories.end(),
              [](const CategoryShare& a, const CategoryShare& b) {
                  if (a.us != b.us)
                      return a.us > b.us;
                  return a.category < b.category;
              });
    result.coverage = result.wallUs > 0
                          ? double(result.cpUs) /
                                double(result.wallUs)
                          : 0.0;
    return result;
}

bool
validateCriticalPath(const CriticalPathResult& result,
                     std::vector<std::string>* violations)
{
    bool ok = true;
    auto violate = [&](std::string message) {
        ok = false;
        if (violations)
            violations->push_back(std::move(message));
    };
    if (result.cpUs > result.wallUs)
        violate("critical path (" + std::to_string(result.cpUs) +
                " us) exceeds wall time (" +
                std::to_string(result.wallUs) + " us)");
    if (result.cpUs < result.longestStepUs)
        violate("critical path (" + std::to_string(result.cpUs) +
                " us) is shorter than its longest step (" +
                std::to_string(result.longestStepUs) + " us)");
    if (!result.categories.empty()) {
        double sum = 0.0;
        int64_t us_sum = 0;
        for (const CategoryShare& share : result.categories) {
            sum += share.share;
            us_sum += share.us;
        }
        if (std::abs(sum - 1.0) > 1e-6)
            violate("category shares sum to " +
                    std::to_string(sum) + ", expected ~1");
        if (us_sum != result.cpUs)
            violate("category us sum to " +
                    std::to_string(us_sum) + ", expected cp length " +
                    std::to_string(result.cpUs));
    }
    return ok;
}

} // namespace betty::obs::critpath
