/**
 * @file
 * Critical-path extraction over a measured SegmentGraph.
 *
 * The walk starts at the segment that ends last anywhere in the trace
 * and repeatedly steps to the *binding* predecessor — the incoming
 * dependency (same-lane predecessor or flow-edge source) with the
 * latest end time, i.e. the one that actually delayed this segment.
 * Segment durations on the path are attributed to their span's
 * category; any positive gap between a binding predecessor's end and
 * the dependent segment's start — time where the path was waiting on
 * nothing the trace can see — is attributed to "stall", as is every
 * span explicitly tagged with the stall category (the trainer's
 * "train/pipeline_wait").
 *
 * Invariants (checked by validateCriticalPath and gated by
 * betty_report critpath):
 *   - cpUs <= wallUs                  (the path is inside the trace)
 *   - cpUs >= longestStepUs           (it contains its longest step)
 *   - category shares sum to ~1       (every on-path us attributed)
 */
#ifndef BETTY_OBS_CRITPATH_CRITICAL_PATH_H
#define BETTY_OBS_CRITPATH_CRITICAL_PATH_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critpath/span_graph.h"

namespace betty::obs::critpath {

/** One maximal run of a single span on the critical path. */
struct PathStep
{
    /** Index into SpanGraph::spans. */
    int32_t spanIndex = -1;
    int64_t startUs = 0;
    int64_t endUs = 0;
    /** Positive scheduling gap immediately before this step
     * (attributed to "stall"). */
    int64_t stallBeforeUs = 0;
};

/** Aggregated on-path time of one category. */
struct CategoryShare
{
    std::string category;
    int64_t us = 0;
    /** us / cpUs. */
    double share = 0.0;
};

struct CriticalPathResult
{
    /** max span end - min span start over the whole trace. */
    int64_t wallUs = 0;

    /** Length of the critical path: last end - first reached start
     * (durations + stall gaps telescope to exactly this). */
    int64_t cpUs = 0;

    /** cpUs / wallUs (0 when the trace is empty). */
    double coverage = 0.0;

    /** Longest single step on the path (duration, gap excluded). */
    int64_t longestStepUs = 0;

    /** Per-category attribution, largest first; includes "stall". */
    std::vector<CategoryShare> categories;

    /** The path, chronological. */
    std::vector<PathStep> steps;
};

/**
 * Walk the critical path of @p segments (built from @p graph).
 * An empty graph yields an all-zero result.
 */
CriticalPathResult analyzeCriticalPath(const SpanGraph& graph,
                                       const SegmentGraph& segments);

/**
 * Check the result's internal consistency (file-comment invariants).
 * Returns false and appends one line per violation to @p violations.
 */
bool validateCriticalPath(const CriticalPathResult& result,
                          std::vector<std::string>* violations);

} // namespace betty::obs::critpath

#endif // BETTY_OBS_CRITPATH_CRITICAL_PATH_H
