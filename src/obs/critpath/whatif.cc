#include "obs/critpath/whatif.h"

#include <algorithm>
#include <vector>

namespace betty::obs::critpath {

double
modelMakespanUs(const SpanGraph& graph, const SegmentGraph& segments,
                const std::map<std::string, double>& scales)
{
    if (segments.segments.empty())
        return 0.0;

    // Per-segment scaled durations; "stall" models as zero (file
    // comment of whatif.h).
    std::vector<double> scaled(segments.segments.size(), 0.0);
    for (size_t i = 0; i < segments.segments.size(); ++i) {
        const Segment& seg = segments.segments[i];
        const std::string category =
            spanCategory(graph.spans[size_t(seg.spanIndex)]);
        if (category == "stall")
            continue;
        double scale = 1.0;
        const auto it = scales.find(category);
        if (it != scales.end())
            scale = it->second;
        scaled[i] = double(seg.durUs()) * scale;
    }

    // Forward replay in topological order: start when every
    // dependency has finished.
    std::vector<double> finish(segments.segments.size(), 0.0);
    double makespan = 0.0;
    for (int32_t index : segments.topoOrder) {
        double start = 0.0;
        for (int32_t pred : segments.preds[size_t(index)])
            start = std::max(start, finish[size_t(pred)]);
        finish[size_t(index)] = start + scaled[size_t(index)];
        makespan = std::max(makespan, finish[size_t(index)]);
    }
    return makespan;
}

WhatIfResult
projectWhatIf(const SpanGraph& graph, const SegmentGraph& segments,
              const WhatIfSpec& spec)
{
    WhatIfResult result;
    result.spec = spec;
    result.baselineModelUs = modelMakespanUs(graph, segments, {});
    std::map<std::string, double> scales;
    scales[spec.category] = spec.scale;
    result.projectedUs = modelMakespanUs(graph, segments, scales);
    if (result.baselineModelUs > 0.0)
        result.projectedSpeedupPct =
            (result.baselineModelUs - result.projectedUs) /
            result.baselineModelUs * 100.0;
    return result;
}

} // namespace betty::obs::critpath
