/**
 * @file
 * Span dependency DAG construction and validation.
 *
 * Input is a set of completed spans (id, category, lane, interval)
 * plus explicit dependency (flow) edges between span ids — either the
 * live obs::Trace buffers or a Chrome trace JSON file written by
 * Trace::writeChromeTrace(). Output is a SegmentGraph: each lane's
 * timeline is cut into leaf "self intervals" (the innermost active
 * span owns the time; cuts are also made where flow edges bind), and
 * edges connect segments
 *
 *   - along each lane, in time order (a thread does one thing at a
 *     time), and
 *   - across lanes where a flow edge binds (task spawn, pipeline
 *     handoff, join, replan ordering).
 *
 * The result is the DAG obs/critpath/critical_path.h walks for
 * longest-path attribution and obs/critpath/whatif.h re-schedules
 * for virtual-speedup projection.
 *
 * Validation is typed (CritpathError), because betty_report critpath
 * must distinguish a malformed artifact (exit 2) from a genuine
 * regression (exit 1): missing/unsupported schema version, dangling
 * flow edges in a lossless trace, and dependency cycles all have
 * their own error kinds. In a trace that dropped events (ring
 * overflow), dangling edges are expected — they are pruned and
 * counted instead of failing.
 */
#ifndef BETTY_OBS_CRITPATH_SPAN_GRAPH_H
#define BETTY_OBS_CRITPATH_SPAN_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

namespace betty::obs {
class JsonValue;
} // namespace betty::obs

namespace betty::obs::critpath {

/** One completed span (value type mirror of obs::TraceEvent). */
struct GraphSpan
{
    uint64_t id = 0;
    std::string name;
    /** Attribution category; "" = uncategorized ("other"). */
    std::string category;
    int32_t lane = 0;
    int64_t startUs = 0;
    int64_t durUs = 0;

    int64_t
    endUs() const
    {
        return startUs + durUs;
    }
};

/** One dependency edge between span ids (obs::FlowEdge mirror). */
struct GraphFlow
{
    uint64_t from = 0;
    uint64_t to = 0;
    int64_t tsUs = 0;
};

/** The raw span/edge sets a critpath analysis starts from. */
struct SpanGraph
{
    std::vector<GraphSpan> spans;
    std::vector<GraphFlow> flows;

    /** Events the producing trace lost to retention caps; when > 0,
     * dangling flow edges are pruned instead of rejected. */
    int64_t droppedEvents = 0;

    /** Flow edges pruned by validate() (dropped-endpoint edges). */
    int64_t prunedFlows = 0;
};

/** What went wrong with a critpath artifact (exit-2 taxonomy). */
enum class CritpathErrorKind
{
    None = 0,
    /** No schema_version field in the trace document. */
    MissingSchema,
    /** schema_version present but not one this build reads. */
    BadSchema,
    /** A flow edge references a span id the trace does not contain
     * (and the trace claims to be lossless). */
    DanglingEdge,
    /** The dependency edges form a cycle. */
    Cycle,
    /** Anything else structurally wrong (not JSON, missing arrays,
     * duplicate span ids, negative durations, ...). */
    Malformed,
};

struct CritpathError
{
    CritpathErrorKind kind = CritpathErrorKind::None;
    std::string message;

    bool
    ok() const
    {
        return kind == CritpathErrorKind::None;
    }
};

/** Short stable label for @p kind ("cycle", "dangling-edge", ...). */
const char* critpathErrorKindName(CritpathErrorKind kind);

/**
 * Build a SpanGraph from the live obs::Trace buffers (snapshot +
 * flowSnapshot + droppedEvents). Call after worker threads have
 * quiesced, same contract as Trace::snapshot().
 */
SpanGraph buildFromLiveTrace();

/**
 * Build a SpanGraph from a parsed Chrome trace document (the format
 * Trace::chromeTraceJson() writes: ph="X" events with args.span_id,
 * a top-level "flows" array, metadata.droppedEvents). Returns false
 * with a typed error on schema/shape problems.
 */
bool buildFromTraceJson(const JsonValue& doc, SpanGraph* out,
                        CritpathError* error);

/**
 * Structural validation: duplicate span ids and negative durations
 * are Malformed; a flow edge whose endpoint is missing is
 * DanglingEdge when droppedEvents == 0, silently pruned (and counted
 * in prunedFlows) otherwise. Self-edges are always Malformed.
 */
bool validateSpanGraph(SpanGraph* graph, CritpathError* error);

/** One leaf self-interval of a span on its lane. */
struct Segment
{
    /** Index into SpanGraph::spans of the owning span. */
    int32_t spanIndex = -1;
    int32_t lane = 0;
    int64_t startUs = 0;
    int64_t endUs = 0;

    int64_t
    durUs() const
    {
        return endUs - startUs;
    }
};

/** The per-segment dependency DAG (see the file comment). */
struct SegmentGraph
{
    /** Sorted by (lane, startUs); zero-length segments are dropped. */
    std::vector<Segment> segments;

    /** Incoming edges, one vector per segment: the previous segment
     * on the same lane plus any bound flow-edge sources. */
    std::vector<std::vector<int32_t>> preds;

    /** A valid topological order (indices into segments). */
    std::vector<int32_t> topoOrder;
};

/**
 * Cut lanes into segments and connect them. Fails with Cycle when
 * the flow edges are time-inconsistent enough to create one (only
 * possible in hand-made traces; live recordings are forward-in-time
 * by construction). @p graph must have passed validateSpanGraph().
 */
bool buildSegmentGraph(const SpanGraph& graph, SegmentGraph* out,
                       CritpathError* error);

/**
 * The attribution category of @p span: its explicit tag if present,
 * otherwise a name-prefix fallback for traces recorded before
 * categories existed ("partition/..." -> "partition", ...), else
 * "other".
 */
std::string spanCategory(const GraphSpan& span);

} // namespace betty::obs::critpath

#endif // BETTY_OBS_CRITPATH_SPAN_GRAPH_H
