#include "obs/critpath/span_graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.h"
#include "obs/run_meta.h"
#include "obs/trace.h"

namespace betty::obs::critpath {

namespace {

CritpathError
makeError(CritpathErrorKind kind, std::string message)
{
    CritpathError error;
    error.kind = kind;
    error.message = std::move(message);
    return error;
}

bool
fail(CritpathError* error, CritpathErrorKind kind,
     std::string message)
{
    if (error)
        *error = makeError(kind, std::move(message));
    return false;
}

} // namespace

const char*
critpathErrorKindName(CritpathErrorKind kind)
{
    switch (kind) {
      case CritpathErrorKind::None:
        return "none";
      case CritpathErrorKind::MissingSchema:
        return "missing-schema";
      case CritpathErrorKind::BadSchema:
        return "bad-schema";
      case CritpathErrorKind::DanglingEdge:
        return "dangling-edge";
      case CritpathErrorKind::Cycle:
        return "cycle";
      case CritpathErrorKind::Malformed:
        return "malformed";
    }
    return "unknown";
}

SpanGraph
buildFromLiveTrace()
{
    SpanGraph graph;
    const auto events = Trace::snapshot();
    graph.spans.reserve(events.size());
    for (const TraceEvent& event : events) {
        GraphSpan span;
        span.id = event.id;
        span.name = event.name ? event.name : "";
        span.category = event.category ? event.category : "";
        span.lane = event.lane;
        span.startUs = event.startUs;
        span.durUs = event.durUs;
        graph.spans.push_back(std::move(span));
    }
    for (const FlowEdge& flow : Trace::flowSnapshot())
        graph.flows.push_back(
            GraphFlow{flow.fromSpan, flow.toSpan, flow.tsUs});
    graph.droppedEvents = Trace::droppedEvents();
    return graph;
}

bool
buildFromTraceJson(const JsonValue& doc, SpanGraph* out,
                   CritpathError* error)
{
    *out = SpanGraph();
    if (!doc.isObject())
        return fail(error, CritpathErrorKind::Malformed,
                    "trace document is not a JSON object");
    const JsonValue* version = doc.find("schema_version");
    if (!version)
        return fail(error, CritpathErrorKind::MissingSchema,
                    "trace has no schema_version field");
    if (!version->isNumber() || version->asInt() < 1 ||
        version->asInt() > kObsSchemaVersion)
        return fail(
            error, CritpathErrorKind::BadSchema,
            "unsupported trace schema_version " +
                (version->isNumber()
                     ? std::to_string(version->asInt())
                     : std::string("(non-numeric)")) +
                " (this build reads 1.." +
                std::to_string(kObsSchemaVersion) + ")");
    const JsonValue* events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return fail(error, CritpathErrorKind::Malformed,
                    "trace has no traceEvents array");

    uint64_t max_id = 0;
    for (const JsonValue& entry : events->array) {
        const JsonValue* ph = entry.find("ph");
        if (!ph || !ph->isString() || ph->string != "X")
            continue; // metadata / counters / flow arrows
        GraphSpan span;
        const JsonValue* name = entry.find("name");
        span.name = name && name->isString() ? name->string : "";
        const JsonValue* cat = entry.find("cat");
        if (cat && cat->isString() && cat->string != "betty" &&
            cat->string != "betty.flow")
            span.category = cat->string;
        const JsonValue* ts = entry.find("ts");
        const JsonValue* dur = entry.find("dur");
        if (!ts || !ts->isNumber() || !dur || !dur->isNumber())
            return fail(error, CritpathErrorKind::Malformed,
                        "span event '" + span.name +
                            "' is missing numeric ts/dur");
        span.startUs = ts->asInt();
        span.durUs = dur->asInt();
        const JsonValue* tid = entry.find("tid");
        span.lane = tid && tid->isNumber()
                        ? int32_t(tid->asInt())
                        : 0;
        const JsonValue* args = entry.find("args");
        const JsonValue* span_id =
            args ? args->find("span_id") : nullptr;
        if (span_id && span_id->isNumber())
            span.id = uint64_t(span_id->asInt());
        max_id = std::max(max_id, span.id);
        out->spans.push_back(std::move(span));
    }
    // Traces from schema versions before span ids carry none: give
    // those spans fresh ids so the segment graph still builds (they
    // just cannot be flow-edge endpoints).
    for (GraphSpan& span : out->spans)
        if (span.id == 0)
            span.id = ++max_id;

    const JsonValue* flows = doc.find("flows");
    if (flows) {
        if (!flows->isArray())
            return fail(error, CritpathErrorKind::Malformed,
                        "flows is not an array");
        for (const JsonValue& entry : flows->array) {
            const JsonValue* from = entry.find("from");
            const JsonValue* to = entry.find("to");
            if (!from || !from->isNumber() || !to ||
                !to->isNumber())
                return fail(error, CritpathErrorKind::Malformed,
                            "flow edge is missing numeric from/to");
            GraphFlow flow;
            flow.from = uint64_t(from->asInt());
            flow.to = uint64_t(to->asInt());
            const JsonValue* ts = entry.find("ts");
            flow.tsUs = ts && ts->isNumber() ? ts->asInt() : 0;
            out->flows.push_back(flow);
        }
    }

    const JsonValue* metadata = doc.find("metadata");
    const JsonValue* dropped =
        metadata ? metadata->find("droppedEvents") : nullptr;
    if (dropped && dropped->isNumber())
        out->droppedEvents = dropped->asInt();
    return true;
}

bool
validateSpanGraph(SpanGraph* graph, CritpathError* error)
{
    std::unordered_set<uint64_t> ids;
    ids.reserve(graph->spans.size());
    for (const GraphSpan& span : graph->spans) {
        if (span.durUs < 0)
            return fail(error, CritpathErrorKind::Malformed,
                        "span '" + span.name +
                            "' has negative duration");
        if (!ids.insert(span.id).second)
            return fail(error, CritpathErrorKind::Malformed,
                        "duplicate span id " +
                            std::to_string(span.id));
    }
    std::vector<GraphFlow> kept;
    kept.reserve(graph->flows.size());
    for (const GraphFlow& flow : graph->flows) {
        if (flow.from == flow.to)
            return fail(error, CritpathErrorKind::Malformed,
                        "flow edge from span " +
                            std::to_string(flow.from) +
                            " to itself");
        const bool resolved =
            ids.count(flow.from) != 0 && ids.count(flow.to) != 0;
        if (resolved) {
            kept.push_back(flow);
            continue;
        }
        if (graph->droppedEvents == 0)
            return fail(
                error, CritpathErrorKind::DanglingEdge,
                "flow edge references missing span id " +
                    std::to_string(ids.count(flow.from) == 0
                                       ? flow.from
                                       : flow.to) +
                    " in a trace that reports no dropped events");
        ++graph->prunedFlows; // ring overflow: expected, prune
    }
    graph->flows = std::move(kept);
    return true;
}

std::string
spanCategory(const GraphSpan& span)
{
    if (!span.category.empty())
        return span.category;
    // Name-prefix fallback for traces recorded before category tags.
    const std::string& n = span.name;
    auto starts = [&n](const char* prefix) {
        return n.rfind(prefix, 0) == 0;
    };
    if (starts("partition/") || starts("plan/") || n == "epoch/plan")
        return "partition";
    if (starts("sample/") || n == "epoch/sample")
        return "sample";
    if (n == "train/transfer" || n == "train/upload")
        return "transfer";
    if (n == "train/gather")
        return "gather";
    if (n == "train/forward" || n == "train/backward" ||
        n == "train/step" || n == "train/loss")
        return "compute";
    if (n == "train/pipeline_wait")
        return "stall";
    return "other";
}

namespace {

/** Start/end sweep event for one span on one lane. */
struct SweepEvent
{
    int64_t tsUs = 0;
    /** false = close, true = open; closes sort before opens at the
     * same timestamp so adjacent spans do not overlap. */
    bool open = false;
    int32_t spanIndex = -1;
};

} // namespace

bool
buildSegmentGraph(const SpanGraph& graph, SegmentGraph* out,
                  CritpathError* error)
{
    *out = SegmentGraph();

    std::unordered_map<uint64_t, int32_t> by_id;
    by_id.reserve(graph.spans.size());
    for (size_t i = 0; i < graph.spans.size(); ++i)
        by_id.emplace(graph.spans[i].id, int32_t(i));

    // Per-lane sweep events and cut points. Flow edges cut both the
    // producing and consuming lanes at their (clamped) binding time,
    // so the edge can attach to a segment boundary on each side.
    std::unordered_map<int32_t, std::vector<SweepEvent>> lane_events;
    std::unordered_map<int32_t, std::vector<int64_t>> lane_cuts;
    for (size_t i = 0; i < graph.spans.size(); ++i) {
        const GraphSpan& span = graph.spans[i];
        lane_events[span.lane].push_back(
            SweepEvent{span.startUs, true, int32_t(i)});
        lane_events[span.lane].push_back(
            SweepEvent{span.endUs(), false, int32_t(i)});
    }
    auto clampToSpan = [](const GraphSpan& span, int64_t ts) {
        return std::clamp(ts, span.startUs, span.endUs());
    };
    for (const GraphFlow& flow : graph.flows) {
        const GraphSpan& from = graph.spans[by_id.at(flow.from)];
        const GraphSpan& to = graph.spans[by_id.at(flow.to)];
        lane_cuts[from.lane].push_back(clampToSpan(from, flow.tsUs));
        lane_cuts[to.lane].push_back(clampToSpan(to, flow.tsUs));
    }

    // Sweep each lane: elementary intervals between boundaries, each
    // owned by the innermost (latest-pushed) active span.
    std::vector<int32_t> lanes;
    lanes.reserve(lane_events.size());
    for (const auto& [lane, events] : lane_events)
        lanes.push_back(lane);
    std::sort(lanes.begin(), lanes.end());

    for (int32_t lane : lanes) {
        auto& events = lane_events[lane];
        std::sort(events.begin(), events.end(),
                  [&](const SweepEvent& a, const SweepEvent& b) {
                      if (a.tsUs != b.tsUs)
                          return a.tsUs < b.tsUs;
                      if (a.open != b.open)
                          return !a.open; // closes first
                      if (a.open)
                          // Opens: longer span first (parent before
                          // child when starts coincide).
                          return graph.spans[a.spanIndex].endUs() >
                                 graph.spans[b.spanIndex].endUs();
                      // Closes: shorter span (child) first.
                      return graph.spans[a.spanIndex].startUs >
                             graph.spans[b.spanIndex].startUs;
                  });
        auto& cuts = lane_cuts[lane];
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()),
                   cuts.end());

        std::vector<int32_t> active;
        size_t cut_pos = 0;
        int64_t prev_ts = 0;
        bool have_prev = false;
        auto emitUpTo = [&](int64_t ts) {
            if (!have_prev || active.empty() || ts <= prev_ts) {
                prev_ts = ts;
                have_prev = true;
                return;
            }
            // Split the elementary interval at any cut points inside
            // it so flow edges land exactly on segment boundaries.
            int64_t lo = prev_ts;
            while (cut_pos < cuts.size() && cuts[cut_pos] <= lo)
                ++cut_pos;
            size_t cp = cut_pos;
            while (cp < cuts.size() && cuts[cp] < ts) {
                out->segments.push_back(
                    Segment{active.back(), lane, lo, cuts[cp]});
                lo = cuts[cp];
                ++cp;
            }
            out->segments.push_back(
                Segment{active.back(), lane, lo, ts});
            prev_ts = ts;
        };
        for (const SweepEvent& event : events) {
            emitUpTo(event.tsUs);
            if (event.open) {
                active.push_back(event.spanIndex);
            } else {
                // Remove by identity (search from the back): robust
                // to imperfect nesting in hand-made traces.
                for (size_t j = active.size(); j > 0; --j) {
                    if (active[j - 1] == event.spanIndex) {
                        active.erase(active.begin() +
                                     int64_t(j - 1));
                        break;
                    }
                }
            }
        }
    }

    // segments are already sorted by (lane, startUs) because lanes
    // were processed in order and each lane's sweep is chronological.
    out->preds.assign(out->segments.size(), {});

    // Lane-order edges: a thread does one thing at a time.
    std::unordered_map<int32_t, std::vector<int32_t>> lane_segments;
    for (size_t i = 0; i < out->segments.size(); ++i)
        lane_segments[out->segments[i].lane].push_back(int32_t(i));
    for (const auto& [lane, indices] : lane_segments)
        for (size_t i = 1; i < indices.size(); ++i)
            out->preds[indices[i]].push_back(indices[i - 1]);

    // Flow edges: source = last segment on the producing lane ending
    // at or before the (clamped) bind time; target = first segment on
    // the consuming lane starting at or after it.
    auto findSource = [&](int32_t lane, int64_t ts) -> int32_t {
        const auto it = lane_segments.find(lane);
        if (it == lane_segments.end())
            return -1;
        int32_t best = -1;
        for (int32_t index : it->second) {
            if (out->segments[index].endUs <= ts)
                best = index;
            else
                break;
        }
        return best;
    };
    auto findTarget = [&](int32_t lane, int64_t ts) -> int32_t {
        const auto it = lane_segments.find(lane);
        if (it == lane_segments.end())
            return -1;
        for (int32_t index : it->second)
            if (out->segments[index].startUs >= ts)
                return index;
        return it->second.empty() ? -1 : it->second.back();
    };
    for (const GraphFlow& flow : graph.flows) {
        const GraphSpan& from = graph.spans[by_id.at(flow.from)];
        const GraphSpan& to = graph.spans[by_id.at(flow.to)];
        const int32_t source =
            findSource(from.lane, clampToSpan(from, flow.tsUs));
        const int32_t target =
            findTarget(to.lane, clampToSpan(to, flow.tsUs));
        if (source < 0 || target < 0 || source == target)
            continue;
        out->preds[target].push_back(source);
    }

    // Kahn's algorithm: topological order + cycle detection.
    std::vector<int32_t> indegree(out->segments.size(), 0);
    std::vector<std::vector<int32_t>> succs(out->segments.size());
    for (size_t i = 0; i < out->preds.size(); ++i) {
        for (int32_t pred : out->preds[i]) {
            succs[pred].push_back(int32_t(i));
            ++indegree[i];
        }
    }
    std::vector<int32_t> ready;
    for (size_t i = 0; i < indegree.size(); ++i)
        if (indegree[i] == 0)
            ready.push_back(int32_t(i));
    out->topoOrder.reserve(out->segments.size());
    while (!ready.empty()) {
        const int32_t index = ready.back();
        ready.pop_back();
        out->topoOrder.push_back(index);
        for (int32_t succ : succs[index])
            if (--indegree[succ] == 0)
                ready.push_back(succ);
    }
    if (out->topoOrder.size() != out->segments.size()) {
        for (size_t i = 0; i < indegree.size(); ++i) {
            if (indegree[i] > 0) {
                const GraphSpan& span =
                    graph.spans[out->segments[i].spanIndex];
                return fail(error, CritpathErrorKind::Cycle,
                            "dependency cycle involving span '" +
                                span.name + "' (id " +
                                std::to_string(span.id) + ")");
            }
        }
    }
    return true;
}

} // namespace betty::obs::critpath
