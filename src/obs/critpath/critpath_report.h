/**
 * @file
 * Schema-versioned CRITPATH_report.json writer.
 *
 * Layout:
 *
 *   {
 *     "critpath_schema_version": 1,
 *     "schema_version": <obs schema>, "meta": {...},
 *     "wall_us": W, "critical_path_us": C, "coverage": C/W,
 *     "longest_step_us": L,
 *     "span_count": N, "flow_count": M,
 *     "dropped_events": D, "pruned_flows": P,
 *     "categories": {"compute": {"us": ..., "share": ...}, ...},
 *     "critical_path": [{"name", "category", "lane", "start_us",
 *                        "dur_us", "stall_before_us"}, ...],
 *     "what_if": [{"category", "scale", "baseline_model_us",
 *                  "projected_us", "projected_speedup_pct"}, ...]
 *   }
 *
 * The "critical_path" array is capped (longest steps win) so the
 * report stays test-sized; the attribution table is always complete.
 */
#ifndef BETTY_OBS_CRITPATH_CRITPATH_REPORT_H
#define BETTY_OBS_CRITPATH_CRITPATH_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critpath/critical_path.h"
#include "obs/critpath/span_graph.h"
#include "obs/critpath/whatif.h"

namespace betty::obs::critpath {

/**
 * Version of the CRITPATH_report.json layout. Bump when a field is
 * renamed, removed, or changes meaning; additions are compatible.
 */
constexpr int64_t kCritpathSchemaVersion = 1;

/** Max steps serialized into the "critical_path" array. */
constexpr size_t kMaxReportSteps = 256;

/** The report as a JSON document. */
std::string critpathReportJson(
    const SpanGraph& graph, const CriticalPathResult& result,
    const std::vector<WhatIfResult>& what_ifs);

/** Write critpathReportJson() to @p path; returns success. */
bool writeCritpathReport(const std::string& path,
                         const SpanGraph& graph,
                         const CriticalPathResult& result,
                         const std::vector<WhatIfResult>& what_ifs);

} // namespace betty::obs::critpath

#endif // BETTY_OBS_CRITPATH_CRITPATH_REPORT_H
