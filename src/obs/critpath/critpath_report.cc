#include "obs/critpath/critpath_report.h"

#include <algorithm>
#include <cstdio>

#include "obs/run_meta.h"

namespace betty::obs::critpath {

namespace {

void
appendEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

void
appendNumber(std::string& out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

std::string
critpathReportJson(const SpanGraph& graph,
                   const CriticalPathResult& result,
                   const std::vector<WhatIfResult>& what_ifs)
{
    std::string out = "{\"critpath_schema_version\": ";
    out += std::to_string(kCritpathSchemaVersion);
    out += ", \"schema_version\": ";
    out += std::to_string(kObsSchemaVersion);
    out += ", \"meta\": ";
    out += runMetaJson();
    out += ", \"wall_us\": ";
    out += std::to_string(result.wallUs);
    out += ", \"critical_path_us\": ";
    out += std::to_string(result.cpUs);
    out += ", \"coverage\": ";
    appendNumber(out, result.coverage);
    out += ", \"longest_step_us\": ";
    out += std::to_string(result.longestStepUs);
    out += ", \"span_count\": ";
    out += std::to_string(graph.spans.size());
    out += ", \"flow_count\": ";
    out += std::to_string(graph.flows.size());
    out += ", \"dropped_events\": ";
    out += std::to_string(graph.droppedEvents);
    out += ", \"pruned_flows\": ";
    out += std::to_string(graph.prunedFlows);

    out += ", \"categories\": {";
    for (size_t i = 0; i < result.categories.size(); ++i) {
        const CategoryShare& share = result.categories[i];
        if (i)
            out += ", ";
        out += "\"";
        appendEscaped(out, share.category);
        out += "\": {\"us\": ";
        out += std::to_string(share.us);
        out += ", \"share\": ";
        appendNumber(out, share.share);
        out += "}";
    }
    out += "}";

    // Cap the serialized path at the longest steps, re-sorted back
    // into chronological order.
    std::vector<size_t> order(result.steps.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (order.size() > kMaxReportSteps) {
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) {
                      const auto& sa = result.steps[a];
                      const auto& sb = result.steps[b];
                      return sa.endUs - sa.startUs >
                             sb.endUs - sb.startUs;
                  });
        order.resize(kMaxReportSteps);
        std::sort(order.begin(), order.end());
    }
    out += ", \"critical_path\": [";
    for (size_t i = 0; i < order.size(); ++i) {
        const PathStep& step = result.steps[order[i]];
        const GraphSpan& span =
            graph.spans[size_t(step.spanIndex)];
        if (i)
            out += ", ";
        out += "{\"name\": \"";
        appendEscaped(out, span.name);
        out += "\", \"category\": \"";
        appendEscaped(out, spanCategory(span));
        out += "\", \"lane\": ";
        out += std::to_string(span.lane);
        out += ", \"start_us\": ";
        out += std::to_string(step.startUs);
        out += ", \"dur_us\": ";
        out += std::to_string(step.endUs - step.startUs);
        out += ", \"stall_before_us\": ";
        out += std::to_string(step.stallBeforeUs);
        out += "}";
    }
    out += "]";

    out += ", \"what_if\": [";
    for (size_t i = 0; i < what_ifs.size(); ++i) {
        const WhatIfResult& what_if = what_ifs[i];
        if (i)
            out += ", ";
        out += "{\"category\": \"";
        appendEscaped(out, what_if.spec.category);
        out += "\", \"scale\": ";
        appendNumber(out, what_if.spec.scale);
        out += ", \"baseline_model_us\": ";
        appendNumber(out, what_if.baselineModelUs);
        out += ", \"projected_us\": ";
        appendNumber(out, what_if.projectedUs);
        out += ", \"projected_speedup_pct\": ";
        appendNumber(out, what_if.projectedSpeedupPct);
        out += "}";
    }
    out += "]}";
    return out;
}

bool
writeCritpathReport(const std::string& path, const SpanGraph& graph,
                    const CriticalPathResult& result,
                    const std::vector<WhatIfResult>& what_ifs)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json =
        critpathReportJson(graph, result, what_ifs);
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

} // namespace betty::obs::critpath
