/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Exists so the observability exports (Chrome traces, metric
 * snapshots) can be validated in-process — by tests/test_obs.cc and
 * the check_obs_output ctest helper — without an external JSON
 * dependency. Supports the full JSON value grammar the exporters
 * emit: objects, arrays, strings with the common escapes, numbers,
 * booleans and null — plus the non-finite number spellings ("nan",
 * "inf", "-inf") that %.17g produces, so readers can reject them with
 * a typed error instead of a parse failure. Not a streaming parser;
 * intended for test-sized documents.
 */
#ifndef BETTY_OBS_JSON_H
#define BETTY_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace betty::obs {

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key, or nullptr if absent / not an object. */
    const JsonValue*
    find(const std::string& key) const
    {
        if (!isObject())
            return nullptr;
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }

    /** Number as int64 (truncating); 0 when not a number. */
    int64_t asInt() const { return int64_t(number); }
};

/**
 * Parse @p text as one JSON document. Returns false on malformed
 * input (trailing garbage included) and, when @p error is non-null,
 * describes the first problem and its offset.
 */
bool parseJson(const std::string& text, JsonValue& out,
               std::string* error = nullptr);

} // namespace betty::obs

#endif // BETTY_OBS_JSON_H
