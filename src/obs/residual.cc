#include "obs/residual.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace betty::obs {

void
ResidualTracker::record(int64_t predicted_bytes, int64_t actual_bytes)
{
    if (!Metrics::enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(ResidualEntry{predicted_bytes, actual_bytes});
}

std::vector<ResidualEntry>
ResidualTracker::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

ResidualSummary
ResidualTracker::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ResidualSummary summary;
    summary.count = int64_t(entries_.size());
    if (entries_.empty())
        return summary;

    double abs_bytes = 0.0, abs_rel = 0.0, signed_rel = 0.0;
    int64_t rel_count = 0;
    for (const auto& entry : entries_) {
        abs_bytes += std::abs(double(entry.residualBytes()));
        if (entry.actualBytes != 0) {
            const double rel = entry.relativeError();
            abs_rel += std::abs(rel);
            signed_rel += rel;
            summary.maxAbsRelative =
                std::max(summary.maxAbsRelative, std::abs(rel));
            ++rel_count;
        }
    }
    summary.meanAbsBytes = abs_bytes / double(entries_.size());
    if (rel_count > 0) {
        summary.meanAbsRelative = abs_rel / double(rel_count);
        summary.bias = signed_rel / double(rel_count);
    }
    return summary;
}

void
ResidualTracker::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

std::string
ResidualTracker::toJson() const
{
    const auto summary_copy = summary();
    const auto entries_copy = entries();

    std::string out = "{\"entries\": [";
    char buf[160];
    for (size_t i = 0; i < entries_copy.size(); ++i) {
        const auto& entry = entries_copy[i];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"index\": %zu, \"predicted_bytes\": %lld, "
                      "\"actual_bytes\": %lld, \"residual_bytes\": "
                      "%lld, \"relative_error\": %.6g}",
                      i ? ", " : "", i,
                      (long long)entry.predictedBytes,
                      (long long)entry.actualBytes,
                      (long long)entry.residualBytes(),
                      entry.relativeError());
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "], \"summary\": {\"count\": %lld, "
                  "\"mean_abs_bytes\": %.6g, \"mean_abs_relative\": "
                  "%.6g, \"max_abs_relative\": %.6g, \"bias\": %.6g}}",
                  (long long)summary_copy.count,
                  summary_copy.meanAbsBytes,
                  summary_copy.meanAbsRelative,
                  summary_copy.maxAbsRelative, summary_copy.bias);
    out += buf;
    return out;
}

ResidualTracker&
residuals()
{
    static ResidualTracker* instance = new ResidualTracker;
    return *instance;
}

} // namespace betty::obs
