/**
 * @file
 * Scenario runner behind `tools/betty_bench`: warmup + repeated
 * measurement of registered workloads, per-phase wall-clock
 * aggregation (PhaseTimer over the existing trace spans), counter
 * deltas and histogram percentiles from the metric registry, and a
 * schema-versioned JSON report with a hardware/build fingerprint —
 * the artifact `betty_report bench-diff` gates wall-clock regressions
 * against.
 *
 * Report layout (BENCH_report.json):
 *
 *   {
 *     "bench_schema_version": 1,
 *     "schema_version": <obs schema>, "meta": {...},
 *     "fingerprint": {"cores": N, "compiler": "...",
 *                     "build_type": "...", "flags": "..."},
 *     "config": {"repeats": "5", "warmup": "1", ...},
 *     "scenarios": {
 *       "<name>": {
 *         "description": "...",
 *         "wall_seconds": {<BenchStats JSON>},
 *         "phases": {"train/forward": {<BenchStats JSON>}, ...},
 *         "counters": {"transfer.bytes": {<BenchStats JSON of
 *                      per-repeat deltas>}, ...},
 *         "gauges": {"device.peak_bytes": <final value>, ...},
 *         "histograms": {"trainer.microbatch_seconds":
 *             {"count": N, "sum": S, "p50": ..., "p95": ...,
 *              "p99": ..., "count_consistent": true}}
 *       }
 *     }
 *   }
 *
 * Warmup repeats run the full workload but contribute nothing to any
 * statistic. Metrics and tracing are force-enabled while a scenario
 * runs and restored afterwards; the metric registry is reset at each
 * scenario start so counters/histograms are scenario-scoped.
 */
#ifndef BETTY_OBS_PERF_BENCH_HARNESS_H
#define BETTY_OBS_PERF_BENCH_HARNESS_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/perf/phase_stats.h"

namespace betty::obs {

/**
 * Version of the BENCH_report.json layout. Bump when a field is
 * renamed, removed, or changes meaning; bench-diff refuses to
 * compare reports whose versions differ.
 */
constexpr int64_t kBenchSchemaVersion = 1;

/** Repeat discipline every scenario runs under. */
struct BenchConfig
{
    /** Measured repeats per scenario (>= 1). */
    int32_t repeats = 5;

    /** Warmup repeats, run and discarded (>= 0). */
    int32_t warmup = 1;
};

/** One registered bench workload. */
struct BenchScenario
{
    /** Stable identifier (report key; bench-diff matches on it). */
    std::string name;

    std::string description;

    /** Untimed preparation, run once before any repeat. Optional. */
    std::function<void()> setup;

    /** One timed repeat of the workload. Required. */
    std::function<void()> run;

    /** Untimed cleanup, run once after the last repeat. Optional. */
    std::function<void()> teardown;
};

/** Runs scenarios and accumulates the report (file comment). */
class BenchRunner
{
  public:
    explicit BenchRunner(BenchConfig config);

    /** Echo @p key = @p value in the report's config section. */
    void setConfigNote(const std::string& key,
                       const std::string& value);

    /** Run @p scenario (warmup + repeats) and record its stats. */
    void run(const BenchScenario& scenario);

    /** Scenarios run so far. */
    int64_t scenarioCount() const { return int64_t(scenarios_.size()); }

    /** The accumulated report as a JSON document. */
    std::string reportJson() const;

    /** Write reportJson() to @p path; returns success. */
    bool writeJson(const std::string& path) const;

  private:
    struct ScenarioRecord
    {
        std::string name;
        std::string description;
        BenchStats wallSeconds;
        std::map<std::string, BenchStats> phases;
        std::map<std::string, BenchStats> counterDeltas;
        std::map<std::string, int64_t> gauges;
        /** name -> (count, sum, p50, p95, p99, consistent). */
        std::string histogramsJson;
    };

    BenchConfig config_;
    std::vector<std::pair<std::string, std::string>> config_notes_;
    std::vector<ScenarioRecord> scenarios_;
};

} // namespace betty::obs

#endif // BETTY_OBS_PERF_BENCH_HARNESS_H
