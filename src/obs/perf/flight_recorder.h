/**
 * @file
 * Always-on lock-free flight recorder for post-mortem debugging.
 *
 * A fixed-capacity ring buffer of structured events — coarse phase
 * begin/end markers, injected faults, OOM recovery actions, cache
 * evictions/releases, pool stalls, checkpoints — that is cheap enough
 * to leave enabled in every run (unlike tracing/metrics, which are
 * opt-in). When something goes wrong the last N events are the story
 * of how it went wrong: `train_cli --flight-recorder-out=FILE` dumps
 * them at exit, ResilientTrainer records every recovery decision into
 * them, and fatal() dumps them automatically once a dump path is
 * registered (setFatalDumpPath).
 *
 * Cost model: recording is one relaxed fetch_add to claim a slot plus
 * a handful of relaxed atomic stores — no locks, no allocation, no
 * syscalls. The ring holds the most recent `capacity` events; older
 * ones are overwritten and counted as dropped. Event names must be
 * string literals (stored by pointer, like trace spans). Timestamps
 * share obs::Trace's microsecond timebase so flight events correlate
 * with trace spans.
 *
 * Frequency discipline: record semantically meaningful state changes
 * (a fault fired, a re-plan happened, a worker went idle), never
 * inner-loop iterations — the ring is a black box, not a profiler.
 */
#ifndef BETTY_OBS_PERF_FLIGHT_RECORDER_H
#define BETTY_OBS_PERF_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace betty::obs {

/** Broad event families (the "category" field of the dump). */
enum class FrCategory : uint8_t {
    Span,       ///< coarse phase begin/end markers
    Fault,      ///< injected fault consumed (util/fault.h)
    Recovery,   ///< ResilientTrainer decision (re-plan, skip, repair)
    Oom,        ///< over-capacity episode on the device model
    Cache,      ///< feature-cache eviction batch / reservation release
    Pool,       ///< thread-pool stall (worker went idle)
    Checkpoint, ///< checkpoint written / restored
    Mark,       ///< anything else worth a timestamp
};

/** Printable category name (the JSON field value). */
const char* frCategoryName(FrCategory category);

/** Begin/end disposition of a Span event; everything else is Instant. */
enum class FrPhase : uint8_t { Instant, Begin, End };

/** One recorded event, as returned by snapshot(). */
struct FrEvent
{
    /** Global record order (strictly increasing across threads). */
    int64_t seq = 0;

    /** Microseconds since the process time anchor (Trace::nowUs()). */
    int64_t tsUs = 0;

    FrCategory category = FrCategory::Mark;
    FrPhase phase = FrPhase::Instant;

    /** Recording thread's trace lane (Trace::currentLane()). */
    int32_t lane = 0;

    /** Event label; a string literal at the recording site. */
    const char* name = nullptr;

    /** Two event-defined arguments (epoch/K/bytes/...; 0 if unused). */
    int64_t a = 0;
    int64_t b = 0;
};

/**
 * Process-wide flight recorder (all methods are static). Enabled by
 * default — this is the one collector that is always on.
 */
class FlightRecorder
{
  public:
    /** True while events are being recorded (default: true). */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn recording on or off (off keeps what was recorded). */
    static void setEnabled(bool on);

    /**
     * Resize the ring to hold @p events (rounded up to a power of
     * two; clamped to >= 64). Call from configuration points or test
     * setup only — events recorded before the resize are discarded.
     * Default capacity: 8192, overridable with BETTY_FR_CAPACITY.
     */
    static void setCapacity(size_t events);

    /** Current ring capacity in events. */
    static size_t capacity();

    /** Append one instant event. @p name must be a string literal. */
    static void record(FrCategory category, const char* name,
                       int64_t a = 0, int64_t b = 0);

    /** Append a Begin span marker (pairs with recordEnd by name). */
    static void recordBegin(const char* name, int64_t a = 0,
                            int64_t b = 0);

    /** Append an End span marker. */
    static void recordEnd(const char* name, int64_t a = 0,
                          int64_t b = 0);

    /** Events recorded since start/clear (including overwritten). */
    static int64_t recordedEvents();

    /** Events lost to ring overwrites. */
    static int64_t droppedEvents();

    /**
     * The retained events in seq order (oldest first). Safe to call
     * while other threads record: slots overwritten mid-copy are
     * detected via their seq stamp and skipped.
     */
    static std::vector<FrEvent> snapshot();

    /** Drop every retained event and reset the counters. */
    static void clear();

    /** The ring as one JSON document (schema_version, meta, events). */
    static std::string dumpJson();

    /** Write dumpJson() to @p path; returns success. */
    static bool writeJson(const std::string& path);

    /**
     * Register @p path as the automatic post-mortem destination:
     * fatal() (util/logging.h) dumps the ring there before exiting,
     * so a dying run always leaves its last events behind. An empty
     * path unregisters. Idempotent.
     */
    static void setFatalDumpPath(const std::string& path);

    /** The registered fatal-dump destination ("" = none). */
    static std::string fatalDumpPath();

  private:
    static std::atomic<bool> enabled_;
};

} // namespace betty::obs

#endif // BETTY_OBS_PERF_FLIGHT_RECORDER_H
