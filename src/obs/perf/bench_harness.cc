#include "obs/perf/bench_harness.h"

#include <cstdio>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

#ifndef BETTY_BUILD_TYPE
#define BETTY_BUILD_TYPE "unknown"
#endif
#ifndef BETTY_BUILD_FLAGS
#define BETTY_BUILD_FLAGS ""
#endif

namespace betty::obs {

namespace {

void
appendNumber(std::string& out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

void
appendEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
}

/** The metric registry's counters as name -> value. */
std::map<std::string, int64_t>
counterValues()
{
    std::map<std::string, int64_t> values;
    JsonValue doc;
    std::string error;
    if (!parseJson(Metrics::snapshotJson(), doc, &error)) {
        warn("bench harness: metrics snapshot unparseable: ", error);
        return values;
    }
    if (const JsonValue* counters = doc.find("counters"))
        for (const auto& [name, value] : counters->object)
            values[name] = value.asInt();
    return values;
}

/** The metric registry's gauges as name -> value. */
std::map<std::string, int64_t>
gaugeValues()
{
    std::map<std::string, int64_t> values;
    JsonValue doc;
    std::string error;
    if (!parseJson(Metrics::snapshotJson(), doc, &error))
        return values;
    if (const JsonValue* gauges = doc.find("gauges"))
        for (const auto& [name, value] : gauges->object)
            values[name] = value.asInt();
    return values;
}

/** Histogram summaries (count/sum/percentiles) for the scenario. */
std::string
histogramSummariesJson()
{
    std::string out = "{";
    bool first = true;
    for (const std::string& name : Metrics::histogramNames()) {
        const Histogram& histogram = Metrics::histogram(name);
        if (histogram.count() <= 0)
            continue;
        out += first ? "\n        " : ",\n        ";
        first = false;
        out += "\"" + name + "\": {\"count\": " +
               std::to_string(histogram.count()) + ", \"sum\": ";
        appendNumber(out, histogram.sum());
        out += ", \"p50\": ";
        appendNumber(out, histogram.percentile(0.50));
        out += ", \"p95\": ";
        appendNumber(out, histogram.percentile(0.95));
        out += ", \"p99\": ";
        appendNumber(out, histogram.percentile(0.99));
        out += ", \"count_consistent\": ";
        out += histogram.bucketsConsistent() ? "true" : "false";
        out += "}";
    }
    out += first ? "}" : "\n      }";
    return out;
}

std::string
fingerprintJson()
{
    std::string out = "{\n    \"cores\": ";
    out += std::to_string(std::thread::hardware_concurrency());
    out += ",\n    \"compiler\": \"";
#if defined(__VERSION__)
    appendEscaped(out, __VERSION__);
#else
    out += "unknown";
#endif
    out += "\",\n    \"build_type\": \"";
    appendEscaped(out, BETTY_BUILD_TYPE);
    out += "\",\n    \"flags\": \"";
    appendEscaped(out, BETTY_BUILD_FLAGS);
    out += "\",\n    \"pointer_bits\": ";
    out += std::to_string(sizeof(void*) * 8);
    out += "\n  }";
    return out;
}

} // namespace

BenchRunner::BenchRunner(BenchConfig config) : config_(config)
{
    BETTY_ASSERT(config_.repeats >= 1, "repeats must be >= 1");
    BETTY_ASSERT(config_.warmup >= 0, "warmup must be >= 0");
}

void
BenchRunner::setConfigNote(const std::string& key,
                           const std::string& value)
{
    for (auto& [existing_key, existing_value] : config_notes_)
        if (existing_key == key) {
            existing_value = value;
            return;
        }
    config_notes_.emplace_back(key, value);
}

void
BenchRunner::run(const BenchScenario& scenario)
{
    BETTY_ASSERT(scenario.run != nullptr,
                 "scenario '", scenario.name, "' has no run()");
    ScenarioRecord record;
    record.name = scenario.name;
    record.description = scenario.description;

    const bool metrics_were_enabled = Metrics::enabled();
    Metrics::setEnabled(true);
    Metrics::reset(); // scenario-scoped counters/histograms

    if (scenario.setup)
        scenario.setup();

    PhaseTimer phase_timer;
    const int32_t total_repeats = config_.warmup + config_.repeats;
    for (int32_t repeat = 0; repeat < total_repeats; ++repeat) {
        const bool warmup = repeat < config_.warmup;
        const auto counters_before = counterValues();
        phase_timer.beginRepeat();
        Timer wall;
        scenario.run();
        const double wall_seconds = wall.seconds();
        phase_timer.endRepeat(warmup);
        if (warmup)
            continue;
        record.wallSeconds.add(wall_seconds);
        for (const auto& [name, after] : counterValues()) {
            const auto before = counters_before.find(name);
            const int64_t delta =
                after -
                (before == counters_before.end() ? 0
                                                 : before->second);
            BenchStats& stats = record.counterDeltas[name];
            // Align sample counts for counters that appear late.
            while (int64_t(stats.count()) + 1 <
                   int64_t(record.wallSeconds.count()))
                stats.add(0.0);
            stats.add(double(delta));
        }
    }
    record.phases = phase_timer.phases();
    record.gauges = gaugeValues();
    record.histogramsJson = histogramSummariesJson();

    if (scenario.teardown)
        scenario.teardown();
    Metrics::setEnabled(metrics_were_enabled);
    scenarios_.push_back(std::move(record));
}

std::string
BenchRunner::reportJson() const
{
    std::string out = "{\n  \"bench_schema_version\": " +
                      std::to_string(kBenchSchemaVersion) + ",\n";
    out += "  \"schema_version\": " +
           std::to_string(kObsSchemaVersion) + ",\n";
    out += "  \"meta\": " + runMetaJson() + ",\n";
    out += "  \"fingerprint\": " + fingerprintJson() + ",\n";

    out += "  \"config\": {";
    out += "\n    \"repeats\": \"" +
           std::to_string(config_.repeats) + "\",";
    out += "\n    \"warmup\": \"" + std::to_string(config_.warmup) +
           "\"";
    for (const auto& [key, value] : config_notes_) {
        out += ",\n    \"";
        appendEscaped(out, key);
        out += "\": \"";
        appendEscaped(out, value);
        out += "\"";
    }
    out += "\n  },\n";

    out += "  \"scenarios\": {";
    for (size_t i = 0; i < scenarios_.size(); ++i) {
        const ScenarioRecord& record = scenarios_[i];
        out += i ? ",\n    " : "\n    ";
        out += "\"";
        appendEscaped(out, record.name);
        out += "\": {\n      \"description\": \"";
        appendEscaped(out, record.description);
        out += "\",\n      \"wall_seconds\": " +
               record.wallSeconds.toJson() + ",\n";
        out += "      \"phases\": {";
        bool first = true;
        for (const auto& [name, stats] : record.phases) {
            out += first ? "\n        " : ",\n        ";
            first = false;
            out += "\"" + name + "\": " + stats.toJson();
        }
        out += first ? "},\n" : "\n      },\n";
        out += "      \"counters\": {";
        first = true;
        for (const auto& [name, stats] : record.counterDeltas) {
            out += first ? "\n        " : ",\n        ";
            first = false;
            out += "\"" + name + "\": " + stats.toJson();
        }
        out += first ? "},\n" : "\n      },\n";
        out += "      \"gauges\": {";
        first = true;
        for (const auto& [name, value] : record.gauges) {
            out += first ? "\n        " : ",\n        ";
            first = false;
            out += "\"" + name + "\": " + std::to_string(value);
        }
        out += first ? "},\n" : "\n      },\n";
        out += "      \"histograms\": " + record.histogramsJson;
        out += "\n    }";
    }
    out += scenarios_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
BenchRunner::writeJson(const std::string& path) const
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json = reportJson();
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

} // namespace betty::obs
