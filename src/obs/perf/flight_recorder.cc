#include "obs/perf/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/run_meta.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty::obs {

std::atomic<bool> FlightRecorder::enabled_{true};

namespace {

/**
 * One ring slot. Every field is an atomic written with relaxed order
 * and published by the seq stamp (release), so concurrent writers
 * that lap the ring and concurrent snapshot() readers are data-race
 * free. The stamp holds the seq of the stored event; kWriting marks a
 * slot mid-update and kEmpty one never written.
 */
struct Slot
{
    static constexpr int64_t kEmpty = -1;
    static constexpr int64_t kWriting = -2;

    std::atomic<int64_t> stamp{kEmpty};
    std::atomic<int64_t> ts{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<int32_t> lane{0};
    std::atomic<uint16_t> catPhase{0}; // category | phase << 8
};

struct Ring
{
    explicit Ring(size_t capacity)
        : mask(capacity - 1), slots(capacity)
    {
    }

    size_t mask;
    std::vector<Slot> slots;
};

size_t
roundUpPow2(size_t value)
{
    size_t pow2 = 64;
    while (pow2 < value && pow2 < (size_t(1) << 30))
        pow2 <<= 1;
    return pow2;
}

/** Default ring capacity (BETTY_FR_CAPACITY, else 8192 events). */
size_t
defaultCapacity()
{
    if (const char* env = std::getenv("BETTY_FR_CAPACITY")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end && *end == '\0' && parsed >= 1)
            return roundUpPow2(size_t(parsed));
    }
    return 8192;
}

struct Recorder
{
    std::atomic<Ring*> ring{nullptr};
    std::atomic<int64_t> nextSeq{0};

    /** Replaced rings stay reachable here: a writer that grabbed the
     * old pointer mid-record must still find live memory, and LSan
     * must not flag the retirement as a leak. */
    std::mutex retireMutex;
    std::vector<std::unique_ptr<Ring>> retired;

    std::mutex fatalPathMutex;
    std::string fatalPath;
};

Recorder&
recorder()
{
    static Recorder* instance = new Recorder; // leaked: outlives threads
    return *instance;
}

Ring&
ensureRing()
{
    Recorder& rec = recorder();
    Ring* ring = rec.ring.load(std::memory_order_acquire);
    if (ring)
        return *ring;
    auto candidate = std::make_unique<Ring>(defaultCapacity());
    Ring* expected = nullptr;
    if (rec.ring.compare_exchange_strong(expected, candidate.get(),
                                         std::memory_order_acq_rel)) {
        Ring* installed = candidate.get();
        std::lock_guard<std::mutex> lock(rec.retireMutex);
        rec.retired.push_back(std::move(candidate));
        return *installed;
    }
    return *expected; // another thread won the install race
}

void
recordEvent(FrCategory category, FrPhase phase, const char* name,
            int64_t a, int64_t b)
{
    Recorder& rec = recorder();
    Ring& ring = ensureRing();
    const int64_t ts = Trace::nowUs();
    const int64_t seq =
        rec.nextSeq.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = ring.slots[size_t(seq) & ring.mask];
    slot.stamp.store(Slot::kWriting, std::memory_order_release);
    slot.ts.store(ts, std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.lane.store(Trace::currentLane(), std::memory_order_relaxed);
    slot.catPhase.store(
        uint16_t(uint16_t(category) | (uint16_t(phase) << 8)),
        std::memory_order_relaxed);
    slot.stamp.store(seq, std::memory_order_release);
}

/** The fatal() hook: dump to the registered path, best effort. */
void
fatalDump()
{
    const std::string path = FlightRecorder::fatalDumpPath();
    if (path.empty())
        return;
    if (FlightRecorder::writeJson(path))
        std::fprintf(stderr,
                     "flight recorder: dumped %lld event(s) to '%s'\n",
                     (long long)FlightRecorder::snapshot().size(),
                     path.c_str());
    else
        std::fprintf(stderr,
                     "flight recorder: could not write '%s'\n",
                     path.c_str());
}

void
appendEscaped(std::string& out, const char* text)
{
    for (const char* c = text; *c; ++c) {
        if (*c == '"' || *c == '\\')
            out += '\\';
        out += *c;
    }
}

} // namespace

const char*
frCategoryName(FrCategory category)
{
    switch (category) {
    case FrCategory::Span:
        return "span";
    case FrCategory::Fault:
        return "fault";
    case FrCategory::Recovery:
        return "recovery";
    case FrCategory::Oom:
        return "oom";
    case FrCategory::Cache:
        return "cache";
    case FrCategory::Pool:
        return "pool";
    case FrCategory::Checkpoint:
        return "checkpoint";
    case FrCategory::Mark:
        return "mark";
    }
    return "unknown";
}

void
FlightRecorder::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
FlightRecorder::setCapacity(size_t events)
{
    Recorder& rec = recorder();
    auto replacement = std::make_unique<Ring>(roundUpPow2(events));
    Ring* installed = replacement.get();
    {
        std::lock_guard<std::mutex> lock(rec.retireMutex);
        rec.retired.push_back(std::move(replacement));
    }
    rec.ring.store(installed, std::memory_order_release);
    rec.nextSeq.store(0, std::memory_order_relaxed);
}

size_t
FlightRecorder::capacity()
{
    return ensureRing().mask + 1;
}

void
FlightRecorder::record(FrCategory category, const char* name,
                       int64_t a, int64_t b)
{
    if (enabled())
        recordEvent(category, FrPhase::Instant, name, a, b);
}

void
FlightRecorder::recordBegin(const char* name, int64_t a, int64_t b)
{
    if (enabled())
        recordEvent(FrCategory::Span, FrPhase::Begin, name, a, b);
}

void
FlightRecorder::recordEnd(const char* name, int64_t a, int64_t b)
{
    if (enabled())
        recordEvent(FrCategory::Span, FrPhase::End, name, a, b);
}

int64_t
FlightRecorder::recordedEvents()
{
    return recorder().nextSeq.load(std::memory_order_relaxed);
}

int64_t
FlightRecorder::droppedEvents()
{
    const int64_t recorded = recordedEvents();
    const int64_t cap = int64_t(capacity());
    return recorded > cap ? recorded - cap : 0;
}

std::vector<FrEvent>
FlightRecorder::snapshot()
{
    Ring& ring = ensureRing();
    std::vector<FrEvent> events;
    events.reserve(ring.slots.size());
    for (Slot& slot : ring.slots) {
        const int64_t before =
            slot.stamp.load(std::memory_order_acquire);
        if (before < 0)
            continue;
        FrEvent event;
        event.seq = before;
        event.tsUs = slot.ts.load(std::memory_order_relaxed);
        event.a = slot.a.load(std::memory_order_relaxed);
        event.b = slot.b.load(std::memory_order_relaxed);
        event.name = slot.name.load(std::memory_order_relaxed);
        event.lane = slot.lane.load(std::memory_order_relaxed);
        const uint16_t packed =
            slot.catPhase.load(std::memory_order_relaxed);
        event.category = FrCategory(packed & 0xff);
        event.phase = FrPhase(packed >> 8);
        // A writer lapping the ring mid-copy changes the stamp; the
        // torn slot is simply skipped.
        if (slot.stamp.load(std::memory_order_acquire) != before)
            continue;
        events.push_back(event);
    }
    std::sort(events.begin(), events.end(),
              [](const FrEvent& x, const FrEvent& y) {
                  return x.seq < y.seq;
              });
    return events;
}

void
FlightRecorder::clear()
{
    Ring& ring = ensureRing();
    for (Slot& slot : ring.slots)
        slot.stamp.store(Slot::kEmpty, std::memory_order_release);
    recorder().nextSeq.store(0, std::memory_order_relaxed);
}

std::string
FlightRecorder::dumpJson()
{
    const std::vector<FrEvent> events = snapshot();
    std::string out = "{\n  \"schema_version\": " +
                      std::to_string(kObsSchemaVersion) + ",\n";
    out += "  \"meta\": " + runMetaJson() + ",\n";
    out += "  \"capacity\": " + std::to_string(capacity()) + ",\n";
    out += "  \"recorded\": " + std::to_string(recordedEvents()) +
           ",\n";
    out += "  \"dropped\": " + std::to_string(droppedEvents()) +
           ",\n";
    out += "  \"events\": [";
    for (size_t i = 0; i < events.size(); ++i) {
        const FrEvent& event = events[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"seq\": " + std::to_string(event.seq);
        out += ", \"ts_us\": " + std::to_string(event.tsUs);
        out += ", \"category\": \"";
        out += frCategoryName(event.category);
        out += "\", \"phase\": \"";
        out += event.phase == FrPhase::Begin
                   ? "begin"
                   : event.phase == FrPhase::End ? "end" : "instant";
        out += "\", \"lane\": " + std::to_string(event.lane);
        out += ", \"name\": \"";
        appendEscaped(out, event.name ? event.name : "");
        out += "\", \"a\": " + std::to_string(event.a);
        out += ", \"b\": " + std::to_string(event.b) + "}";
    }
    out += events.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool
FlightRecorder::writeJson(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string json = dumpJson();
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    return written == json.size();
}

void
FlightRecorder::setFatalDumpPath(const std::string& path)
{
    Recorder& rec = recorder();
    {
        std::lock_guard<std::mutex> lock(rec.fatalPathMutex);
        rec.fatalPath = path;
    }
    setFatalHook(path.empty() ? nullptr : &fatalDump);
}

std::string
FlightRecorder::fatalDumpPath()
{
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.fatalPathMutex);
    return rec.fatalPath;
}

} // namespace betty::obs
