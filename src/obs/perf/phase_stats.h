/**
 * @file
 * Repeat statistics over wall-clock samples, and per-span-category
 * time aggregation across bench repeats.
 *
 * BenchStats is the unit every BENCH_report.json figure is stated in:
 * N repeat samples summarized as min/max/mean/median/stddev plus
 * interpolated percentiles. PhaseTimer turns the existing trace spans
 * (obs/trace.h) into per-phase wall-clock totals per repeat — enable
 * tracing, run the workload, and every `area/phase` span category
 * becomes one BenchStats series with one sample per measured repeat.
 * Warmup repeats are measured and discarded by the caller
 * (bench_harness.h), never mixed into the statistics.
 */
#ifndef BETTY_OBS_PERF_PHASE_STATS_H
#define BETTY_OBS_PERF_PHASE_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace betty::obs {

/** Summary statistics over repeat samples (seconds in practice). */
class BenchStats
{
  public:
    /** Append one sample. */
    void add(double value) { samples_.push_back(value); }

    size_t count() const { return samples_.size(); }
    const std::vector<double>& samples() const { return samples_; }

    double min() const;
    double max() const;
    double mean() const;

    /** Sample median (percentile(0.5)). */
    double median() const { return percentile(0.5); }

    /** Population standard deviation (0 for < 2 samples). */
    double stddev() const;

    /**
     * The @p q quantile (q in [0, 1]) of the samples, linearly
     * interpolated between the two nearest order statistics. 0 with
     * no samples.
     */
    double percentile(double q) const;

    /**
     * The stats as one JSON object: {"samples": [...], "min": ...,
     * "max": ..., "mean": ..., "median": ..., "stddev": ...,
     * "p50": ..., "p95": ..., "p99": ...}.
     */
    std::string toJson() const;

  private:
    std::vector<double> samples_;
};

/**
 * Aggregates trace spans into per-phase seconds, one sample per
 * measured repeat. Usage per repeat:
 *
 *   timer.beginRepeat();   // clears the trace ring, enables tracing
 *   scenario();            // spans record as usual
 *   timer.endRepeat(discard);  // discard=true for warmup repeats
 *
 * Spans are grouped by their full `area/phase` name; nested spans
 * each contribute their own duration (phase categories overlap by
 * design — `epoch` contains `train/forward`). A phase absent from a
 * repeat contributes a 0-second sample, so every phase series has
 * exactly one sample per measured repeat.
 */
class PhaseTimer
{
  public:
    /** Clear the trace ring and enable span collection. Must not run
     * concurrently with other trace writers (quiesce between
     * repeats). */
    void beginRepeat();

    /**
     * Aggregate the spans recorded since beginRepeat(). With
     * @p discard (warmup) the spans are dropped instead of becoming
     * samples. Restores the trace-enabled state found at the first
     * beginRepeat().
     */
    void endRepeat(bool discard = false);

    /** Measured (non-discarded) repeats so far. */
    int64_t measuredRepeats() const { return measured_repeats_; }

    /** Per-phase seconds series, keyed by span name. */
    const std::map<std::string, BenchStats>& phases() const
    {
        return phases_;
    }

  private:
    std::map<std::string, BenchStats> phases_;
    int64_t measured_repeats_ = 0;
    bool in_repeat_ = false;
    bool saved_trace_enabled_ = false;
};

} // namespace betty::obs

#endif // BETTY_OBS_PERF_PHASE_STATS_H
