#include "obs/perf/phase_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/trace.h"
#include "util/logging.h"

namespace betty::obs {

namespace {

void
appendNumber(std::string& out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

double
BenchStats::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
BenchStats::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
BenchStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double sample : samples_)
        sum += sample;
    return sum / double(samples_.size());
}

double
BenchStats::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double mu = mean();
    double sum_sq = 0.0;
    for (double sample : samples_)
        sum_sq += (sample - mu) * (sample - mu);
    return std::sqrt(sum_sq / double(samples_.size()));
}

double
BenchStats::percentile(double q) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * double(sorted.size() - 1);
    const size_t lo = size_t(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - double(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string
BenchStats::toJson() const
{
    std::string out = "{\"samples\": [";
    for (size_t i = 0; i < samples_.size(); ++i) {
        if (i)
            out += ", ";
        appendNumber(out, samples_[i]);
    }
    out += "], \"min\": ";
    appendNumber(out, min());
    out += ", \"max\": ";
    appendNumber(out, max());
    out += ", \"mean\": ";
    appendNumber(out, mean());
    out += ", \"median\": ";
    appendNumber(out, median());
    out += ", \"stddev\": ";
    appendNumber(out, stddev());
    out += ", \"p50\": ";
    appendNumber(out, percentile(0.50));
    out += ", \"p95\": ";
    appendNumber(out, percentile(0.95));
    out += ", \"p99\": ";
    appendNumber(out, percentile(0.99));
    out += "}";
    return out;
}

void
PhaseTimer::beginRepeat()
{
    BETTY_ASSERT(!in_repeat_,
                 "PhaseTimer::beginRepeat without endRepeat");
    if (measured_repeats_ == 0 && phases_.empty())
        saved_trace_enabled_ = Trace::enabled();
    Trace::setEnabled(false);
    Trace::clear();
    Trace::setEnabled(true);
    in_repeat_ = true;
}

void
PhaseTimer::endRepeat(bool discard)
{
    BETTY_ASSERT(in_repeat_,
                 "PhaseTimer::endRepeat without beginRepeat");
    in_repeat_ = false;
    Trace::setEnabled(saved_trace_enabled_);
    if (discard)
        return;

    std::map<std::string, double> totals;
    for (const TraceEvent& event : Trace::snapshot())
        totals[event.name] += double(event.durUs) * 1e-6;

    // Keep every phase series aligned: one sample per measured
    // repeat, 0 when the phase did not occur. A phase first seen now
    // is backfilled with zeros for the repeats it missed.
    for (auto& [name, stats] : phases_) {
        const auto it = totals.find(name);
        stats.add(it == totals.end() ? 0.0 : it->second);
        if (it != totals.end())
            totals.erase(it);
    }
    for (const auto& [name, seconds] : totals) {
        BenchStats& stats = phases_[name];
        for (int64_t i = 0; i < measured_repeats_; ++i)
            stats.add(0.0);
        stats.add(seconds);
    }
    ++measured_repeats_;
}

} // namespace betty::obs
