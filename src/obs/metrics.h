/**
 * @file
 * Named counters, gauges, and fixed-bucket histograms with JSON
 * snapshot export.
 *
 * The metric catalog (docs/OBSERVABILITY.md) covers the quantities
 * Betty's evaluation argues about: partition quality
 * (partition.edge_cut), sampling volume (sampler.fanout_nodes),
 * residency (device.peak_bytes), data movement (transfer.bytes), and
 * per-micro-batch latency (trainer.microbatch_seconds).
 *
 * Cost model matches obs/trace.h: collection is off by default and a
 * disabled update costs one relaxed atomic load and branch — no
 * allocation, no lock, no registry lookup (instrumented sites cache
 * the handle in a function-local static). Enabled updates are single
 * relaxed atomic RMWs; registration (first lookup of a name) takes the
 * registry mutex and is expected to happen once per site.
 */
#ifndef BETTY_OBS_METRICS_H
#define BETTY_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace betty::obs {

class Metrics;

/** Monotonically increasing sum (e.g. bytes transferred). */
class Counter
{
  public:
    /** Add @p delta when collection is enabled. */
    inline void add(int64_t delta);

    /** add(1). */
    void increment() { add(1); }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-write-wins (or running-max) point-in-time value. */
class Gauge
{
  public:
    /** Overwrite the value when collection is enabled. */
    inline void set(int64_t value);

    /** Raise the value to at least @p value when enabled. */
    inline void max(int64_t value);

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * value <= bounds[i] (first matching bucket); one extra overflow
 * bucket counts everything above the last bound.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    /** Record one observation when collection is enabled. */
    inline void observe(double value);

    const std::vector<double>& bounds() const { return bounds_; }

    /** Count in bucket @p index (bounds().size() is the overflow). */
    int64_t bucketCount(size_t index) const;

    /** Total observations. */
    int64_t count() const;

    /** Sum of observed values. */
    double sum() const;

    /**
     * The @p q quantile (q in [0, 1]) estimated from the bucket
     * counts by linear interpolation within the target bucket. The
     * first bucket interpolates from min(0, bounds[0]); ranks landing
     * in the overflow bucket return the last bound (no upper edge to
     * interpolate toward). 0 with no observations.
     */
    double percentile(double q) const;

    /**
     * True when the per-bucket counts sum to count() — the export
     * consistency check. Only meaningful while no thread is
     * observing (mid-update the two are transiently decoupled).
     */
    bool bucketsConsistent() const;

    void reset();

  private:
    void observeSlow(double value);

    std::vector<double> bounds_;
    std::vector<std::atomic<int64_t>> counts_; // bounds.size() + 1
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Process-wide metric registry (all methods are static). */
class Metrics
{
  public:
    /** True if metric updates are being recorded. Hot-path gate. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void setEnabled(bool on);

    /**
     * The counter registered under @p name (creating it on first
     * use). The reference stays valid for the process lifetime; cache
     * it in a function-local static at the instrumentation site.
     */
    static Counter& counter(const std::string& name);

    /** The gauge registered under @p name. */
    static Gauge& gauge(const std::string& name);

    /**
     * The histogram registered under @p name. @p bounds applies only
     * on first registration (later callers inherit the original
     * bucket layout); empty means a default exponential seconds
     * layout (1us .. ~100s).
     */
    static Histogram& histogram(const std::string& name,
                                std::vector<double> bounds = {});

    /** Names of every registered histogram, sorted. */
    static std::vector<std::string> histogramNames();

    /** Reset every registered metric's value (registrations stay). */
    static void reset();

    /**
     * The registry as one JSON object: {"schema_version": N, "meta":
     * {...}, "counters": {...}, "gauges": {...}, "histograms": {...},
     * "estimator_residuals": {...}, "memory_profile": {...}}.
     */
    static std::string snapshotJson();

    /** Write snapshotJson() to @p path; returns success. */
    static bool writeJson(const std::string& path);

  private:
    static std::atomic<bool> enabled_;
};

inline void
Counter::add(int64_t delta)
{
    if (Metrics::enabled())
        value_.fetch_add(delta, std::memory_order_relaxed);
}

inline void
Gauge::set(int64_t value)
{
    if (Metrics::enabled())
        value_.store(value, std::memory_order_relaxed);
}

inline void
Gauge::max(int64_t value)
{
    if (!Metrics::enabled())
        return;
    int64_t current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

inline void
Histogram::observe(double value)
{
    if (Metrics::enabled())
        observeSlow(value);
}

} // namespace betty::obs

#endif // BETTY_OBS_METRICS_H
