/**
 * @file
 * Allocation-provenance profiling: Table 3 category attribution.
 *
 * Betty's memory estimator (§4.4.3, Table 3) prices eight component
 * categories — parameters, input features, labels, block structure,
 * hidden outputs, aggregator intermediates, gradients, optimizer
 * state — but the device model only measures one untyped total. This
 * layer closes the gap: an RAII MemCategoryScope pushes a category on
 * a thread-local stack, every Tensor allocation snapshots the current
 * category, and DeviceMemoryModel keeps per-category live/peak
 * counters. The result is a *measured* Table 3 column next to the
 * analytical one, per micro-batch, so estimator drift is localized to
 * a component instead of reported only in aggregate.
 *
 * Cost model matches the rest of obs/: category tagging itself is one
 * thread-local read at allocation time (always on — it is how paired
 * frees find their category), while MemProfiler::record() and the
 * timeline are gated on Metrics::enabled().
 */
#ifndef BETTY_OBS_MEMPROF_H
#define BETTY_OBS_MEMPROF_H

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace betty::obs {

/**
 * Table 3 memory component a tensor allocation belongs to. Values
 * index fixed-size per-category arrays; keep Uncategorized last.
 */
enum class MemCategory : uint8_t {
    Parameters = 0,    ///< (1) GNN model parameters
    InputFeatures = 1, ///< (2) gathered input features
    Labels = 2,        ///< (3) output labels
    Blocks = 3,        ///< (4) block structure (CSR rows/cols)
    Hidden = 4,        ///< (5) hidden layer outputs
    Aggregator = 5,    ///< (6) aggregator intermediates (Eq. 5)
    Gradients = 6,     ///< (7) gradients + backward buffers
    OptimizerState = 7,///< (8) optimizer state (Adam m/v)
    FeatureCache = 8,  ///< device-resident feature-cache reservation
    Uncategorized = 9, ///< allocations outside any scope
};

/** Number of categories, including Uncategorized. */
constexpr size_t kMemCategoryCount = 10;

/** Snake_case category name used in JSON exports and trace args. */
const char* memCategoryName(MemCategory category);

/** The calling thread's innermost active category
 * (Uncategorized outside any MemCategoryScope). */
MemCategory currentMemCategory();

namespace detail {
void pushMemCategory(MemCategory category);
void popMemCategory();
} // namespace detail

/** RAII tag: tensor allocations in this scope belong to @p category. */
class MemCategoryScope
{
  public:
    explicit MemCategoryScope(MemCategory category)
    {
        detail::pushMemCategory(category);
    }

    ~MemCategoryScope() { detail::popMemCategory(); }

    MemCategoryScope(const MemCategoryScope&) = delete;
    MemCategoryScope& operator=(const MemCategoryScope&) = delete;
};

/** One sampled point of the per-category live-bytes timeline. */
struct MemTimelineSample
{
    /** Trace::nowUs() timestamp of the sample. */
    int64_t tsUs = 0;

    /** Live bytes per category at the sample. */
    std::array<int64_t, kMemCategoryCount> live{};

    /** Total live bytes; always equals the sum of live[]. */
    int64_t totalLive = 0;
};

/** Per-category predicted vs. measured peaks for one micro-batch. */
struct MicroBatchMemRecord
{
    /** Measured per-category window peak bytes. */
    std::array<int64_t, kMemCategoryCount> actualPeak{};

    /** Estimator's per-component prediction (componentBytes()). */
    std::array<int64_t, kMemCategoryCount> predicted{};

    /** Measured total window peak. */
    int64_t actualTotalPeak = 0;

    /** Estimator's total peak prediction. */
    int64_t predictedTotalPeak = 0;
};

/**
 * Thread-safe accumulator of per-micro-batch category breakdowns,
 * embedded in the metrics snapshot and the run report as
 * "memory_profile".
 */
class MemProfiler
{
  public:
    /** Record one micro-batch (no-op while metrics are disabled). */
    void record(const MicroBatchMemRecord& record);

    /** Copy of every recorded micro-batch, in record order. */
    std::vector<MicroBatchMemRecord> records() const;

    void reset();

    /**
     * JSON object: {"micro_batches": [{"index", "actual_peak_bytes",
     * "predicted_peak_bytes", "categories": {name: {"predicted_bytes",
     * "actual_bytes", "residual_bytes"}}}], "category_peaks": {...}}.
     */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<MicroBatchMemRecord> records_;
};

/** The process-wide profiler the trainers record into. */
MemProfiler& memProfiler();

} // namespace betty::obs

#endif // BETTY_OBS_MEMPROF_H
