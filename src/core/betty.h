/**
 * @file
 * Betty's public API: REG-based batch-level partitioning plus the
 * memory-aware planner that sizes the number of micro-batches.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   NeighborSampler sampler(ds.graph, {10, 25});
 *   auto full = sampler.sample(ds.trainNodes);
 *   Betty betty(model.memorySpec(), {.deviceCapacityBytes = gib(2)});
 *   auto plan = betty.plan(full);
 *   trainer.trainMicroBatches(plan.microBatches);
 */
#ifndef BETTY_CORE_BETTY_H
#define BETTY_CORE_BETTY_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/micro_batch.h"
#include "memory/estimator.h"
#include "partition/kway_partitioner.h"
#include "partition/partitioner.h"
#include "partition/reg.h"
#include "sampling/block.h"

namespace betty {

/** Knobs of Betty's partitioning stage. */
struct BettyOptions
{
    /** REG construction parameters (hub guard, vertex weights). */
    RegOptions reg;

    /** Multilevel min-cut solver parameters (k is set per call). */
    KwayOptions kway;

    /**
     * Warm-start repeated partitioning (our implementation of the
     * paper's future-work item on reducing partitioning overhead,
     * §7): when the same partitioner object repartitions a resampled
     * batch at the same K, seed the solver from the previous epoch's
     * assignment and only refine, instead of running full multilevel
     * V-cycles. Falls back to a cold start whenever K changes or too
     * few output nodes carry over.
     */
    bool warmStart = false;
};

/**
 * Betty's redundancy-aware output partitioner (paper §4.3.2,
 * Algorithm 1): build the REG over the batch's output layer and
 * min-cut it K ways, so output nodes sharing many in-neighbors stay
 * in the same micro-batch.
 */
class BettyPartitioner : public OutputPartitioner
{
  public:
    explicit BettyPartitioner(BettyOptions options = {})
        : options_(std::move(options))
    {
    }

    std::vector<std::vector<int64_t>> partition(
        const MultiLayerBatch& batch, int32_t k) override;

    std::string name() const override { return "betty"; }

    /** True if the last partition() call reused the previous epoch's
     * assignment (warm start). */
    bool lastRunWasWarm() const { return last_run_was_warm_; }

  private:
    BettyOptions options_;
    // Warm-start memory: the previous assignment, by raw-graph id.
    std::unordered_map<int64_t, int32_t> previous_assignment_;
    int32_t previous_k_ = 0;
    bool last_run_was_warm_ = false;
};

/** Output of memory-aware planning. */
struct PlanResult
{
    /** Chosen number of micro-batches. */
    int32_t k = 0;

    /** The extracted micro-batches, ready for the trainer. */
    std::vector<MultiLayerBatch> microBatches;

    /** Per-micro-batch memory estimates (same order). */
    std::vector<MemoryEstimate> estimates;

    /** Largest estimated micro-batch peak, bytes. */
    int64_t maxEstimatedPeak = 0;

    /** How many K values were tried before fitting. */
    int32_t attempts = 0;

    /** False if even maxK micro-batches exceed the capacity. */
    bool fits = false;
};

/**
 * Memory-aware batch re-partitioning (paper §4.4.3): starting from
 * K = initial_k, partition, extract, estimate every micro-batch's
 * peak memory analytically, and re-partition with K+1 until every
 * micro-batch fits the device budget — no on-device trial and error.
 */
class MemoryAwarePlanner
{
  public:
    /**
     * @param spec Model description used by the estimator.
     * @param capacity_bytes Device memory budget each micro-batch's
     * estimated peak must stay under.
     */
    MemoryAwarePlanner(GnnSpec spec, int64_t capacity_bytes)
        : spec_(std::move(spec)), capacity_(capacity_bytes)
    {
    }

    /**
     * Retarget the planner at a new budget mid-run. The resilient
     * runtime calls this when the device capacity changes under it
     * (robustness/resilient_trainer.h) so re-planning fits the
     * capacity that actually exists now, not the one configured at
     * startup.
     */
    void setCapacity(int64_t capacity_bytes)
    {
        capacity_ = capacity_bytes;
    }

    int64_t capacity() const { return capacity_; }

    /**
     * Bytes carved out of the device by standing reservations — the
     * feature cache (cache/feature_cache.h) — that training tensors
     * can never use. The fit check becomes
     * `worst_peak + reserved <= capacity`, so planning with a cache
     * installed picks a K whose micro-batches fit the memory that is
     * actually available, not the nameplate capacity.
     */
    void setReservedBytes(int64_t reserved_bytes)
    {
        reserved_ = reserved_bytes;
    }

    int64_t reservedBytes() const { return reserved_; }

    /**
     * Size K and produce the micro-batches using @p partitioner.
     * @param max_k Safety bound on the search.
     */
    PlanResult plan(const MultiLayerBatch& full,
                    OutputPartitioner& partitioner,
                    int32_t initial_k = 1, int32_t max_k = 4096) const;

    /**
     * Fast search variant (our extension; the paper's loop is the
     * strict K -> K+1 of plan()): double K until every micro-batch
     * fits, then binary-search the gap for the smallest fitting K.
     * O(log K) partition+estimate rounds instead of O(K). Because the
     * worst micro-batch's memory is not perfectly monotone in K, the
     * result can occasionally sit one step above plan()'s minimum; it
     * always fits (or reports fits=false like plan()).
     */
    PlanResult planGeometric(const MultiLayerBatch& full,
                             OutputPartitioner& partitioner,
                             int32_t max_k = 4096) const;

  private:
    /** Partition at exactly @p k and estimate every micro-batch. */
    PlanResult evaluateK(const MultiLayerBatch& full,
                         OutputPartitioner& partitioner,
                         int32_t k) const;

    GnnSpec spec_;
    int64_t capacity_;
    int64_t reserved_ = 0;
};

/** Top-level configuration of the Betty facade. */
struct BettyConfig
{
    /** Device budget the planner targets. */
    int64_t deviceCapacityBytes = 0;

    /** Partitioning knobs. */
    BettyOptions partition;

    /** First K the planner tries. */
    int32_t initialK = 1;

    /** Safety bound on the K search. */
    int32_t maxK = 4096;
};

/** One-stop facade: REG partitioning + memory-aware planning. */
class Betty
{
  public:
    Betty(GnnSpec spec, BettyConfig config)
        : partitioner_(config.partition),
          planner_(std::move(spec), config.deviceCapacityBytes),
          config_(std::move(config))
    {
    }

    /** Partition @p full into the fewest micro-batches that fit. */
    PlanResult
    plan(const MultiLayerBatch& full)
    {
        return planner_.plan(full, partitioner_, config_.initialK,
                             config_.maxK);
    }

    /** Like plan() but with the O(log K) geometric search. */
    PlanResult
    planFast(const MultiLayerBatch& full)
    {
        return planner_.planGeometric(full, partitioner_,
                                      config_.maxK);
    }

    /** Partition @p full into exactly @p k micro-batches (no planner). */
    std::vector<MultiLayerBatch>
    partition(const MultiLayerBatch& full, int32_t k)
    {
        return extractMicroBatches(full, partitioner_.partition(full, k));
    }

    BettyPartitioner& partitioner() { return partitioner_; }

  private:
    BettyPartitioner partitioner_;
    MemoryAwarePlanner planner_;
    BettyConfig config_;
};

} // namespace betty

#endif // BETTY_CORE_BETTY_H
