/**
 * @file
 * Micro-batch extraction: turn a K-way split of a batch's output nodes
 * into K self-contained multi-level bipartite micro-batches.
 *
 * This is the equivalent of the artifact's block_dataloader.py. Each
 * micro-batch is the hierarchical bipartite closure of its output
 * group INSIDE the already-sampled full batch: for every retained
 * destination, exactly the in-edges the full batch sampled for it are
 * kept, level by level. Micro-batches therefore cover the full batch's
 * edges exactly (union = full batch, destinations disjoint), which is
 * what makes accumulated micro-batch gradients equal the full-batch
 * gradient (paper §4.2.3: "The disjoint union of V_k is V").
 */
#ifndef BETTY_CORE_MICRO_BATCH_H
#define BETTY_CORE_MICRO_BATCH_H

#include <cstdint>
#include <vector>

#include "sampling/block.h"

namespace betty {

/**
 * Extract one micro-batch per output-node group. Groups hold raw-graph
 * node IDs and must be subsets of full.outputNodes(); empty groups
 * yield batches with zero output nodes (callers skip them).
 */
std::vector<MultiLayerBatch> extractMicroBatches(
    const MultiLayerBatch& full,
    const std::vector<std::vector<int64_t>>& groups);

/**
 * Redundancy of a micro-batch set: sum over micro-batches of first-
 * layer input nodes, minus the full batch's count — the number of
 * duplicated feature loads the partitioning causes (Fig 16 metric).
 */
int64_t inputNodeRedundancy(const MultiLayerBatch& full,
                            const std::vector<MultiLayerBatch>& micros);

} // namespace betty

#endif // BETTY_CORE_MICRO_BATCH_H
