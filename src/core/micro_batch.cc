#include "core/micro_batch.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty {

std::vector<MultiLayerBatch>
extractMicroBatches(const MultiLayerBatch& full,
                    const std::vector<std::vector<int64_t>>& groups)
{
    BETTY_TRACE_SPAN_CAT("partition/extract_micro_batches", "partition");
    const int64_t layers = full.numLayers();
    BETTY_ASSERT(layers > 0, "empty batch");

    // Per layer: raw-graph id -> local destination index in the full
    // batch's block (destinations are the source prefix, so the first
    // numDst src entries are exactly the destinations).
    std::vector<std::unordered_map<int64_t, int64_t>> dst_local(
        static_cast<size_t>(layers));
    for (int64_t layer = 0; layer < layers; ++layer) {
        const Block& block = full.blocks[size_t(layer)];
        auto& map = dst_local[size_t(layer)];
        map.reserve(size_t(block.numDst()) * 2);
        const auto dsts = block.dstNodes();
        for (int64_t i = 0; i < block.numDst(); ++i)
            map.emplace(dsts[size_t(i)], i);
    }

    std::vector<MultiLayerBatch> micros;
    micros.reserve(groups.size());
    for (const auto& group : groups) {
        MultiLayerBatch micro;
        micro.blocks.resize(size_t(layers));

        // Outside in, mirroring the sampler: the sources of the block
        // just built become the destinations of the block below.
        std::vector<int64_t> seeds = group;
        for (int64_t layer = layers - 1; layer >= 0; --layer) {
            const Block& parent = full.blocks[size_t(layer)];
            const auto& map = dst_local[size_t(layer)];
            std::vector<std::vector<int64_t>> src_per_dst;
            src_per_dst.reserve(seeds.size());
            for (int64_t seed : seeds) {
                const auto it = map.find(seed);
                BETTY_ASSERT(it != map.end(), "node ", seed,
                             " is not a destination of layer ", layer);
                std::vector<int64_t> sources;
                const auto edges = parent.inEdges(it->second);
                sources.reserve(edges.size());
                for (int64_t src_local : edges)
                    sources.push_back(
                        parent.srcNodes()[size_t(src_local)]);
                src_per_dst.push_back(std::move(sources));
            }
            micro.blocks[size_t(layer)] =
                Block(std::move(seeds), src_per_dst);
            seeds = micro.blocks[size_t(layer)].srcNodes();
        }
        micros.push_back(std::move(micro));
    }
    if (obs::Metrics::enabled()) {
        // Structure bytes (Table 3 item (4)) across the extracted
        // micro-batches: K copies of shared edges make this exceed the
        // full batch's structureBytes() — the redundancy Betty trades
        // for peak-memory headroom.
        static obs::Counter& structure_bytes =
            obs::Metrics::counter("micro_batch.structure_bytes");
        for (const auto& micro : micros)
            structure_bytes.add(micro.structureBytes());
    }
    return micros;
}

int64_t
inputNodeRedundancy(const MultiLayerBatch& full,
                    const std::vector<MultiLayerBatch>& micros)
{
    int64_t total = 0;
    for (const auto& micro : micros)
        total += int64_t(micro.inputNodes().size());
    return total - int64_t(full.inputNodes().size());
}

} // namespace betty
