#include "core/betty.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty {

namespace {

/** Planner telemetry: the chosen K, search attempts, worst estimate. */
void
recordPlanMetrics(const PlanResult& result)
{
    if (!obs::Metrics::enabled())
        return;
    static obs::Gauge& plan_k = obs::Metrics::gauge("plan.k");
    static obs::Counter& attempts =
        obs::Metrics::counter("plan.attempts");
    static obs::Gauge& estimated_peak =
        obs::Metrics::gauge("plan.max_estimated_peak_bytes");
    plan_k.set(result.k);
    attempts.add(result.attempts);
    estimated_peak.set(result.maxEstimatedPeak);
}

} // namespace

std::vector<std::vector<int64_t>>
BettyPartitioner::partition(const MultiLayerBatch& batch, int32_t k)
{
    BETTY_ASSERT(k >= 1, "k must be >= 1");
    BETTY_TRACE_SPAN_CAT("partition/betty", "partition");
    const auto outputs = batch.outputNodes();
    last_run_was_warm_ = false;
    if (k == 1)
        return {std::vector<int64_t>(outputs.begin(), outputs.end())};

    // Algorithm 1: REG over the output layer, then K-way min cut.
    const WeightedGraph reg =
        buildReg(batch.blocks.back(), options_.reg);
    KwayOptions kway = options_.kway;
    kway.k = k;

    std::vector<int32_t> parts;
    if (options_.warmStart && previous_k_ == k) {
        // Seed from the previous assignment; nodes not seen before
        // take part 0 and let rebalance/refinement place them.
        std::vector<int32_t> initial(outputs.size(), 0);
        size_t carried = 0;
        for (size_t i = 0; i < outputs.size(); ++i) {
            const auto it = previous_assignment_.find(outputs[i]);
            if (it != previous_assignment_.end()) {
                initial[i] = it->second;
                ++carried;
            }
        }
        // Warm starting from a mostly-unseen batch would just be a
        // bad cold start; require half the nodes to carry over.
        if (carried * 2 >= outputs.size()) {
            parts = kwayPartitionWarm(reg, kway, std::move(initial));
            last_run_was_warm_ = true;
        }
    }
    if (parts.empty())
        parts = kwayPartition(reg, kway);

    if (obs::Metrics::enabled()) {
        // Partition quality: REG edge weight crossing micro-batch
        // boundaries — the redundancy Betty's min-cut minimizes.
        static obs::Gauge& edge_cut =
            obs::Metrics::gauge("partition.edge_cut");
        static obs::Counter& runs =
            obs::Metrics::counter("partition.runs");
        static obs::Counter& warm_runs =
            obs::Metrics::counter("partition.warm_runs");
        edge_cut.set(reg.cutCost(parts));
        runs.increment();
        if (last_run_was_warm_)
            warm_runs.increment();
    }

    if (options_.warmStart) {
        previous_assignment_.clear();
        previous_assignment_.reserve(outputs.size() * 2);
        for (size_t i = 0; i < outputs.size(); ++i)
            previous_assignment_.emplace(outputs[i], parts[i]);
        previous_k_ = k;
    }
    return groupByPart(outputs, parts, k);
}

PlanResult
MemoryAwarePlanner::evaluateK(const MultiLayerBatch& full,
                              OutputPartitioner& partitioner,
                              int32_t k) const
{
    BETTY_TRACE_SPAN_CAT("plan/evaluate_k", "partition");
    PlanResult result;
    result.k = k;
    result.attempts = 1;
    result.microBatches =
        extractMicroBatches(full, partitioner.partition(full, k));
    result.estimates.reserve(result.microBatches.size());
    int64_t worst = 0;
    for (const auto& micro : result.microBatches) {
        result.estimates.push_back(estimateBatchMemory(micro, spec_));
        worst = std::max(worst, result.estimates.back().peak);
    }
    result.maxEstimatedPeak = worst;
    // Standing reservations (the feature cache) shrink the memory a
    // micro-batch may actually use below the nameplate capacity.
    result.fits = capacity_ <= 0 || worst + reserved_ <= capacity_;
    return result;
}

PlanResult
MemoryAwarePlanner::plan(const MultiLayerBatch& full,
                         OutputPartitioner& partitioner,
                         int32_t initial_k, int32_t max_k) const
{
    BETTY_ASSERT(initial_k >= 1 && max_k >= initial_k,
                 "bad K search range");
    BETTY_TRACE_SPAN_CAT("plan/search", "partition");
    const int64_t num_outputs = int64_t(full.outputNodes().size());

    int32_t attempts = 0;
    for (int32_t k = initial_k; k <= max_k; ++k) {
        ++attempts;
        PlanResult result = evaluateK(full, partitioner, k);
        result.attempts = attempts;
        if (result.fits) {
            recordPlanMetrics(result);
            return result;
        }
        // Splitting beyond one output node per micro-batch can't help.
        if (int64_t(k) >= num_outputs || k == max_k)
            return result;
    }
    panic("unreachable: plan loop must return");
}

PlanResult
MemoryAwarePlanner::planGeometric(const MultiLayerBatch& full,
                                  OutputPartitioner& partitioner,
                                  int32_t max_k) const
{
    BETTY_ASSERT(max_k >= 1, "bad K bound");
    BETTY_TRACE_SPAN_CAT("plan/search", "partition");
    const int64_t num_outputs = int64_t(full.outputNodes().size());
    const int32_t hard_max = int32_t(
        std::min<int64_t>(max_k, std::max<int64_t>(1, num_outputs)));

    int32_t attempts = 0;

    // Phase 1: double K until something fits (or the bound is hit).
    int32_t lo = 0; // largest known non-fitting K (0 = none known)
    int32_t k = 1;
    PlanResult best;
    while (true) {
        ++attempts;
        PlanResult result = evaluateK(full, partitioner, k);
        if (result.fits) {
            best = std::move(result);
            break;
        }
        lo = k;
        if (k >= hard_max) {
            result.attempts = attempts;
            return result; // nothing fits
        }
        k = int32_t(std::min<int64_t>(int64_t(k) * 2, hard_max));
    }

    // Phase 2: binary search (lo, best.k] for the smallest fit.
    int32_t hi = best.k;
    while (hi - lo > 1) {
        const int32_t mid = lo + (hi - lo) / 2;
        ++attempts;
        PlanResult result = evaluateK(full, partitioner, mid);
        if (result.fits) {
            best = std::move(result);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best.attempts = attempts;
    recordPlanMetrics(best);
    return best;
}

} // namespace betty
