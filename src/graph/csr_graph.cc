#include "graph/csr_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace betty {

CsrGraph::CsrGraph(int64_t num_nodes, const std::vector<Edge>& edges,
                   bool drop_self_loops)
    : num_nodes_(num_nodes)
{
    BETTY_ASSERT(num_nodes >= 0, "negative node count");

    std::vector<int64_t> out_deg(size_t(num_nodes), 0);
    std::vector<int64_t> in_deg(size_t(num_nodes), 0);
    int64_t kept = 0;
    for (const Edge& e : edges) {
        BETTY_ASSERT(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                     e.dst < num_nodes,
                     "edge (", e.src, ",", e.dst, ") out of range");
        if (drop_self_loops && e.src == e.dst)
            continue;
        ++out_deg[size_t(e.src)];
        ++in_deg[size_t(e.dst)];
        ++kept;
    }
    num_edges_ = kept;

    out_offsets_.assign(size_t(num_nodes) + 1, 0);
    in_offsets_.assign(size_t(num_nodes) + 1, 0);
    for (int64_t v = 0; v < num_nodes; ++v) {
        out_offsets_[size_t(v) + 1] = out_offsets_[size_t(v)] +
                                      out_deg[size_t(v)];
        in_offsets_[size_t(v) + 1] = in_offsets_[size_t(v)] +
                                     in_deg[size_t(v)];
    }

    out_targets_.resize(size_t(num_edges_));
    in_sources_.resize(size_t(num_edges_));
    std::vector<int64_t> out_fill(out_offsets_.begin(),
                                  out_offsets_.end() - 1);
    std::vector<int64_t> in_fill(in_offsets_.begin(),
                                 in_offsets_.end() - 1);
    for (const Edge& e : edges) {
        if (drop_self_loops && e.src == e.dst)
            continue;
        out_targets_[size_t(out_fill[size_t(e.src)]++)] = e.dst;
        in_sources_[size_t(in_fill[size_t(e.dst)]++)] = e.src;
    }

    // Canonicalize adjacency order so the graph is identical no
    // matter how its edge list was ordered (serialization round
    // trips, edgeList() rebuilds, parallel builders).
    for (int64_t v = 0; v < num_nodes; ++v) {
        std::sort(out_targets_.begin() + out_offsets_[size_t(v)],
                  out_targets_.begin() + out_offsets_[size_t(v) + 1]);
        std::sort(in_sources_.begin() + in_offsets_[size_t(v)],
                  in_sources_.begin() + in_offsets_[size_t(v) + 1]);
    }
}

std::span<const int64_t>
CsrGraph::outNeighbors(int64_t node) const
{
    BETTY_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
    const auto begin = size_t(out_offsets_[size_t(node)]);
    const auto end = size_t(out_offsets_[size_t(node) + 1]);
    return {out_targets_.data() + begin, end - begin};
}

std::span<const int64_t>
CsrGraph::inNeighbors(int64_t node) const
{
    BETTY_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
    const auto begin = size_t(in_offsets_[size_t(node)]);
    const auto end = size_t(in_offsets_[size_t(node) + 1]);
    return {in_sources_.data() + begin, end - begin};
}

int64_t
CsrGraph::outDegree(int64_t node) const
{
    return int64_t(outNeighbors(node).size());
}

int64_t
CsrGraph::inDegree(int64_t node) const
{
    return int64_t(inNeighbors(node).size());
}

int64_t
CsrGraph::maxInDegree() const
{
    int64_t best = 0;
    for (int64_t v = 0; v < num_nodes_; ++v)
        best = std::max(best, inDegree(v));
    return best;
}

std::vector<int64_t>
CsrGraph::inDegreeBuckets(int64_t max_bucket,
                          const std::vector<int64_t>& nodes) const
{
    BETTY_ASSERT(max_bucket >= 1, "need at least one bucket");
    std::vector<int64_t> buckets(size_t(max_bucket) + 1, 0);
    auto account = [&](int64_t v) {
        const int64_t d = inDegree(v);
        ++buckets[size_t(std::min(d, max_bucket))];
    };
    if (nodes.empty()) {
        for (int64_t v = 0; v < num_nodes_; ++v)
            account(v);
    } else {
        for (int64_t v : nodes)
            account(v);
    }
    return buckets;
}

std::vector<Edge>
CsrGraph::edgeList() const
{
    std::vector<Edge> edges;
    edges.reserve(size_t(num_edges_));
    for (int64_t v = 0; v < num_nodes_; ++v)
        for (int64_t dst : outNeighbors(v))
            edges.push_back({v, dst});
    return edges;
}

} // namespace betty
