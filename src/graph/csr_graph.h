/**
 * @file
 * Directed graph in compressed-sparse-row form.
 *
 * This is the substrate the datasets live in: node u with an edge
 * u -> v means "u is an (in-)neighbor whose features v aggregates",
 * matching the paper's notation (Equation 1: SUM over u -> v).
 * Both out- and in-adjacency are materialized because sampling walks
 * in-edges (who feeds v) while REG construction walks out-edges
 * (who does u feed).
 */
#ifndef BETTY_GRAPH_CSR_GRAPH_H
#define BETTY_GRAPH_CSR_GRAPH_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace betty {

/** One directed edge, source -> destination. */
struct Edge
{
    int64_t src;
    int64_t dst;
};

/** Immutable directed graph with both adjacency directions in CSR. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an edge list. Parallel edges are kept (they occur in
     * sampled multigraphs); self loops are kept unless @p drop_self_loops.
     */
    CsrGraph(int64_t num_nodes, const std::vector<Edge>& edges,
             bool drop_self_loops = false);

    int64_t numNodes() const { return num_nodes_; }
    int64_t numEdges() const { return num_edges_; }

    /** Destinations of edges leaving @p node. */
    std::span<const int64_t> outNeighbors(int64_t node) const;

    /** Sources of edges entering @p node. */
    std::span<const int64_t> inNeighbors(int64_t node) const;

    int64_t outDegree(int64_t node) const;
    int64_t inDegree(int64_t node) const;

    /** Maximum in-degree across all nodes (0 for an empty graph). */
    int64_t maxInDegree() const;

    /**
     * Histogram of in-degrees, bucketed the way DGL's in-degree
     * bucketing does (paper §4.4.2): buckets 0..max_bucket-1 hold exact
     * degrees; the final bucket accumulates the long tail of nodes with
     * in-degree >= max_bucket. Restricted to @p nodes if nonempty.
     */
    std::vector<int64_t> inDegreeBuckets(
        int64_t max_bucket,
        const std::vector<int64_t>& nodes = {}) const;

    /** Reconstruct the edge list (src, dst) in out-CSR order. */
    std::vector<Edge> edgeList() const;

  private:
    int64_t num_nodes_ = 0;
    int64_t num_edges_ = 0;
    std::vector<int64_t> out_offsets_;
    std::vector<int64_t> out_targets_;
    std::vector<int64_t> in_offsets_;
    std::vector<int64_t> in_sources_;
};

} // namespace betty

#endif // BETTY_GRAPH_CSR_GRAPH_H
