/**
 * @file
 * Symmetric weighted graph in CSR form — the input representation for
 * the multilevel min-cut partitioner and the output of REG
 * construction (paper §4.3.2): edge weight = number of shared
 * in-neighbors between two output nodes, vertex weight = the balance
 * cost the partitioner must equalize.
 */
#ifndef BETTY_GRAPH_WEIGHTED_GRAPH_H
#define BETTY_GRAPH_WEIGHTED_GRAPH_H

#include <cstdint>
#include <span>
#include <vector>

namespace betty {

/** One weighted undirected adjacency entry. */
struct WeightedEdge
{
    int64_t u;
    int64_t v;
    int64_t weight;
};

/** Immutable symmetric weighted graph. */
class WeightedGraph
{
  public:
    WeightedGraph() = default;

    /**
     * Build from an undirected triplet list. Each {u, v, w} contributes
     * adjacency in both directions; duplicate (u, v) pairs have their
     * weights summed; self loops are dropped (REG removes them,
     * Algorithm 1 line 7, and min-cut ignores them).
     * Vertex weights default to 1 if @p vertex_weights is empty.
     */
    WeightedGraph(int64_t num_nodes,
                  const std::vector<WeightedEdge>& edges,
                  std::vector<int64_t> vertex_weights = {});

    int64_t numNodes() const { return num_nodes_; }

    /** Number of undirected edges (each counted once). */
    int64_t numEdges() const { return int64_t(adj_targets_.size()) / 2; }

    std::span<const int64_t> neighbors(int64_t node) const;
    std::span<const int64_t> edgeWeights(int64_t node) const;

    int64_t vertexWeight(int64_t node) const
    {
        return vertex_weights_[size_t(node)];
    }

    int64_t totalVertexWeight() const { return total_vertex_weight_; }

    /** Sum of weights of edges with endpoints in different parts. */
    int64_t cutCost(const std::vector<int32_t>& parts) const;

    /** Degree (number of distinct neighbors). */
    int64_t degree(int64_t node) const
    {
        return int64_t(neighbors(node).size());
    }

  private:
    int64_t num_nodes_ = 0;
    int64_t total_vertex_weight_ = 0;
    std::vector<int64_t> adj_offsets_;
    std::vector<int64_t> adj_targets_;
    std::vector<int64_t> adj_weights_;
    std::vector<int64_t> vertex_weights_;
};

} // namespace betty

#endif // BETTY_GRAPH_WEIGHTED_GRAPH_H
