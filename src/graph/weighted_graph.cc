#include "graph/weighted_graph.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace betty {

WeightedGraph::WeightedGraph(int64_t num_nodes,
                             const std::vector<WeightedEdge>& edges,
                             std::vector<int64_t> vertex_weights)
    : num_nodes_(num_nodes)
{
    BETTY_ASSERT(num_nodes >= 0, "negative node count");
    if (vertex_weights.empty()) {
        vertex_weights_.assign(size_t(num_nodes), 1);
    } else {
        BETTY_ASSERT(int64_t(vertex_weights.size()) == num_nodes,
                     "vertex weight count mismatch");
        vertex_weights_ = std::move(vertex_weights);
    }
    total_vertex_weight_ = 0;
    for (int64_t w : vertex_weights_)
        total_vertex_weight_ += w;

    // Deduplicate by accumulating weights per (min, max) endpoint pair.
    std::unordered_map<int64_t, int64_t> merged;
    merged.reserve(edges.size());
    for (const WeightedEdge& e : edges) {
        BETTY_ASSERT(e.u >= 0 && e.u < num_nodes && e.v >= 0 &&
                     e.v < num_nodes,
                     "edge endpoint out of range");
        if (e.u == e.v)
            continue;
        const int64_t lo = std::min(e.u, e.v);
        const int64_t hi = std::max(e.u, e.v);
        merged[lo * num_nodes + hi] += e.weight;
    }

    std::vector<int64_t> deg(size_t(num_nodes), 0);
    for (const auto& [key, w] : merged) {
        (void)w;
        ++deg[size_t(key / num_nodes)];
        ++deg[size_t(key % num_nodes)];
    }
    adj_offsets_.assign(size_t(num_nodes) + 1, 0);
    for (int64_t v = 0; v < num_nodes; ++v)
        adj_offsets_[size_t(v) + 1] = adj_offsets_[size_t(v)] +
                                      deg[size_t(v)];
    adj_targets_.resize(size_t(adj_offsets_.back()));
    adj_weights_.resize(size_t(adj_offsets_.back()));
    std::vector<int64_t> fill(adj_offsets_.begin(), adj_offsets_.end() - 1);
    for (const auto& [key, w] : merged) {
        const int64_t u = key / num_nodes;
        const int64_t v = key % num_nodes;
        adj_targets_[size_t(fill[size_t(u)])] = v;
        adj_weights_[size_t(fill[size_t(u)]++)] = w;
        adj_targets_[size_t(fill[size_t(v)])] = u;
        adj_weights_[size_t(fill[size_t(v)]++)] = w;
    }
}

std::span<const int64_t>
WeightedGraph::neighbors(int64_t node) const
{
    BETTY_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
    const auto begin = size_t(adj_offsets_[size_t(node)]);
    const auto end = size_t(adj_offsets_[size_t(node) + 1]);
    return {adj_targets_.data() + begin, end - begin};
}

std::span<const int64_t>
WeightedGraph::edgeWeights(int64_t node) const
{
    BETTY_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
    const auto begin = size_t(adj_offsets_[size_t(node)]);
    const auto end = size_t(adj_offsets_[size_t(node) + 1]);
    return {adj_weights_.data() + begin, end - begin};
}

int64_t
WeightedGraph::cutCost(const std::vector<int32_t>& parts) const
{
    BETTY_ASSERT(int64_t(parts.size()) == num_nodes_,
                 "partition vector size mismatch");
    int64_t cut = 0;
    for (int64_t u = 0; u < num_nodes_; ++u) {
        const auto nbrs = neighbors(u);
        const auto wts = edgeWeights(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
            if (nbrs[i] > u && parts[size_t(u)] != parts[size_t(nbrs[i])])
                cut += wts[i];
        }
    }
    return cut;
}

} // namespace betty
