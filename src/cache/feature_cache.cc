#include "cache/feature_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "util/logging.h"

namespace betty {

namespace {

/** Metric charges for one access() batch (call only when enabled). */
void
chargeAccessMetrics(int64_t hits, int64_t misses, int64_t bytes_saved,
                    int64_t evictions)
{
    static obs::Counter& cache_hits = obs::Metrics::counter("cache.hits");
    static obs::Counter& cache_misses =
        obs::Metrics::counter("cache.misses");
    static obs::Counter& cache_bytes_saved =
        obs::Metrics::counter("cache.bytes_saved");
    static obs::Counter& cache_evictions =
        obs::Metrics::counter("cache.evictions");
    cache_hits.add(hits);
    cache_misses.add(misses);
    cache_bytes_saved.add(bytes_saved);
    cache_evictions.add(evictions);
}

} // namespace

bool
parseCachePolicy(const std::string& name, CachePolicy* out)
{
    if (name == "lru") {
        *out = CachePolicy::Lru;
        return true;
    }
    if (name == "lru-pinned") {
        *out = CachePolicy::LruPinned;
        return true;
    }
    return false;
}

const char*
cachePolicyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::Lru:
        return "lru";
      case CachePolicy::LruPinned:
        return "lru-pinned";
    }
    return "?";
}

FeatureCache::FeatureCache(DeviceMemoryModel* device,
                           int64_t capacity_bytes, int64_t row_bytes,
                           CachePolicy policy)
    : row_bytes_(row_bytes), policy_(policy), device_(device)
{
    BETTY_ASSERT(row_bytes_ > 0, "FeatureCache row_bytes must be > 0");
    reserved_bytes_ = std::max<int64_t>(0, capacity_bytes);
    capacity_rows_ = reserved_bytes_ / row_bytes_;
    if (device_ && reserved_bytes_ > 0)
        device_->onAlloc(reserved_bytes_,
                         obs::MemCategory::FeatureCache);
}

FeatureCache::~FeatureCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (device_ && reserved_bytes_ > 0)
        device_->onFree(reserved_bytes_,
                        obs::MemCategory::FeatureCache);
    reserved_bytes_ = 0;
}

FeatureCache::AccessResult
FeatureCache::access(const std::vector<int64_t>& rows)
{
    std::lock_guard<std::mutex> lock(mutex_);
    AccessResult result;
    const int64_t evictions_before = stats_.evictions;
    for (const int64_t row : rows) {
        auto found = resident_.find(row);
        if (found != resident_.end()) {
            ++result.hits;
            if (!found->second.pinned)
                lru_.splice(lru_.begin(), lru_, found->second.it);
            continue;
        }
        ++result.misses;
        if (capacity_rows_ - pinned_rows_ <= 0)
            continue; // no unpinned slots: transfer-through, no insert
        evictDownToLocked(capacity_rows_ - 1);
        lru_.push_front(row);
        resident_.emplace(row, Entry{false, lru_.begin()});
    }
    result.bytesSaved = result.hits * row_bytes_;
    stats_.hits += result.hits;
    stats_.misses += result.misses;
    stats_.bytesSaved += result.bytesSaved;
    if (obs::Metrics::enabled())
        chargeAccessMetrics(result.hits, result.misses,
                            result.bytesSaved, 0);
    // One flight event per access batch, never per row: an eviction
    // wave is a state change worth a timestamp, row churn is not.
    const int64_t evicted = stats_.evictions - evictions_before;
    if (evicted > 0)
        obs::FlightRecorder::record(obs::FrCategory::Cache,
                                    "cache/evict-batch", evicted,
                                    int64_t(resident_.size()));
    return result;
}

void
FeatureCache::pin(const std::vector<int64_t>& rows)
{
    if (policy_ != CachePolicy::LruPinned)
        return; // pure LRU keeps the stack-inclusion property
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int64_t row : rows) {
        if (pinned_rows_ >= capacity_rows_)
            break;
        auto found = resident_.find(row);
        if (found != resident_.end()) {
            if (found->second.pinned)
                continue;
            lru_.erase(found->second.it);
            found->second.pinned = true;
            ++pinned_rows_;
            continue;
        }
        evictDownToLocked(capacity_rows_ - 1);
        resident_.emplace(row, Entry{true, lru_.end()});
        ++pinned_rows_;
    }
}

void
FeatureCache::shrinkTo(int64_t new_capacity_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t target =
        std::clamp<int64_t>(new_capacity_bytes, 0, reserved_bytes_);
    if (target == reserved_bytes_)
        return;
    const int64_t freed = reserved_bytes_ - target;
    reserved_bytes_ = target;
    capacity_rows_ = reserved_bytes_ / row_bytes_;
    // Unpin anything that no longer fits, then evict down to the new
    // row budget (pinned rows survive shrinks as long as they fit).
    if (pinned_rows_ > capacity_rows_) {
        // Deterministic unpin order is not observable (unpinned rows
        // drop to LRU tail immediately below), so just demote until
        // the pinned set fits, in hash-map order, and evict by count.
        for (auto it = resident_.begin();
             it != resident_.end() && pinned_rows_ > capacity_rows_;
             ++it) {
            if (!it->second.pinned)
                continue;
            it->second.pinned = false;
            lru_.push_back(it->first);
            it->second.it = std::prev(lru_.end());
            --pinned_rows_;
        }
    }
    evictDownToLocked(capacity_rows_);
    if (device_ && freed > 0)
        device_->onFree(freed, obs::MemCategory::FeatureCache);
    ++stats_.releases;
    stats_.releasedBytes += freed;
    obs::FlightRecorder::record(obs::FrCategory::Cache,
                                "cache/shrink", freed, target);
    if (obs::Metrics::enabled()) {
        static obs::Counter& releases =
            obs::Metrics::counter("cache.releases");
        static obs::Counter& released_bytes =
            obs::Metrics::counter("cache.released_bytes");
        releases.increment();
        released_bytes.add(freed);
    }
}

void
FeatureCache::invalidate()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    resident_.clear();
    pinned_rows_ = 0;
}

void
FeatureCache::setRecordEvictions(bool record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    record_evictions_ = record;
}

std::vector<int64_t>
FeatureCache::evictionLog() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return eviction_log_;
}

FeatureCacheStats
FeatureCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

int64_t
FeatureCache::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reserved_bytes_;
}

int64_t
FeatureCache::capacityRows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_rows_;
}

int64_t
FeatureCache::reservedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reserved_bytes_;
}

int64_t
FeatureCache::residentRows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return int64_t(resident_.size());
}

int64_t
FeatureCache::pinnedRows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pinned_rows_;
}

void
FeatureCache::evictDownToLocked(int64_t max_rows)
{
    const int64_t max_unpinned =
        std::max<int64_t>(0, max_rows - pinned_rows_);
    int64_t evicted = 0;
    while (int64_t(lru_.size()) > max_unpinned) {
        const int64_t victim = lru_.back();
        lru_.pop_back();
        resident_.erase(victim);
        ++stats_.evictions;
        ++evicted;
        if (record_evictions_)
            eviction_log_.push_back(victim);
    }
    if (evicted > 0 && obs::Metrics::enabled())
        chargeAccessMetrics(0, 0, 0, evicted);
}

} // namespace betty
