/**
 * @file
 * Device-resident redundancy-aware feature cache.
 *
 * Betty's REG partitioning minimizes input-node duplication across
 * micro-batches (§4.3) but cannot eliminate it: every duplicated node
 * is re-gathered and re-transferred each micro-batch, and hot
 * high-degree nodes are re-transferred every epoch. This cache sits
 * between Trainer::gatherFeatures and the TransferModel and tracks
 * WHICH input rows are already resident on the device, so a
 * micro-batch only pays transfer cost for the rows it actually misses.
 *
 * Design invariants (enforced by tests/test_feature_cache*.cc):
 *
 *  - Pure data-movement optimization. The cache stores node-ID
 *    residency, never feature values: the gather still reads the host
 *    dataset for every row, so cached and uncached runs are
 *    bit-identical in losses and parameters — only
 *    transfer.{bytes,seconds} change.
 *
 *  - Reservation accounting. The full capacity is charged into the
 *    DeviceMemoryModel under MemCategory::FeatureCache at
 *    construction (a carve-out, like a CUDA memory pool), so the
 *    memory-aware planner and the OOM arbiter see it when deciding
 *    whether K micro-batches fit. shrinkTo()/releaseAll() give the
 *    bytes back mid-run when the resilient trainer needs them.
 *
 *  - Deterministic eviction. All accesses are serialized under one
 *    mutex, and the trainer's pipelined prefetch lane keeps exactly
 *    one gather in flight, so the access sequence — and therefore the
 *    eviction order — is identical across thread counts.
 *
 * Two policies: pure LRU (which has the stack-inclusion property, so
 * misses are monotone non-increasing in capacity) and LRU with a
 * pinned hot set of high-degree nodes that are never evicted.
 */
#ifndef BETTY_CACHE_FEATURE_CACHE_H
#define BETTY_CACHE_FEATURE_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "memory/device_memory.h"
#include "obs/memprof.h"

namespace betty {

/** Replacement policy for FeatureCache. */
enum class CachePolicy : uint8_t {
    Lru = 0,       ///< pure LRU (stack property: misses monotone in size)
    LruPinned = 1, ///< LRU + pinned hot set (pinned rows never evicted)
};

/** Parse "lru" / "lru-pinned"; returns false on unknown names. */
bool parseCachePolicy(const std::string& name, CachePolicy* out);

/** Policy name as used by --cache-policy and the run report. */
const char* cachePolicyName(CachePolicy policy);

/** Lifetime counters of one FeatureCache. */
struct FeatureCacheStats
{
    int64_t hits = 0;          ///< rows found resident
    int64_t misses = 0;        ///< rows that had to be transferred
    int64_t evictions = 0;     ///< rows displaced to make room
    int64_t bytesSaved = 0;    ///< hits * rowBytes
    int64_t releases = 0;      ///< shrinkTo()/releaseAll() calls that freed
    int64_t releasedBytes = 0; ///< reservation bytes given back
};

/**
 * Device-resident feature-row cache (residency set + LRU metadata).
 *
 * Thread-safe: every public method takes an internal mutex, so the
 * pipelined prefetch lane and the compute lane can consult it
 * concurrently without races. Determinism across thread counts is the
 * CALLER's obligation (the trainer keeps gathers totally ordered).
 */
class FeatureCache
{
  public:
    /**
     * @param device Device model to charge the reservation into (may
     *   be nullptr: accounting-only cache, e.g. in benches).
     * @param capacity_bytes Carved-out reservation; rounded DOWN to a
     *   whole number of rows for residency purposes, but the full
     *   amount is charged (a real pool reserves what it asked for).
     * @param row_bytes Bytes per cached feature row
     *   (featureDim * sizeof(float)).
     * @param policy Replacement policy.
     */
    FeatureCache(DeviceMemoryModel* device, int64_t capacity_bytes,
                 int64_t row_bytes, CachePolicy policy = CachePolicy::Lru);

    /** Releases any remaining reservation back to the device. */
    ~FeatureCache();

    FeatureCache(const FeatureCache&) = delete;
    FeatureCache& operator=(const FeatureCache&) = delete;

    /** Result of one access() batch. hits + misses == rows.size(). */
    struct AccessResult
    {
        int64_t hits = 0;
        int64_t misses = 0;
        int64_t bytesSaved = 0; ///< hits * rowBytes()
    };

    /**
     * Look up @p rows in order; each row is a hit (already resident,
     * refreshed to most-recently-used) or a miss (inserted, evicting
     * least-recently-used unpinned rows as needed). A capacity of
     * zero rows makes everything miss without inserting. The caller
     * transfers only the missed rows' bytes.
     */
    AccessResult access(const std::vector<int64_t>& rows);

    /**
     * Pin @p rows (most-valuable-first) as permanently resident,
     * truncated to capacity. Only meaningful under LruPinned; under
     * pure Lru this is a no-op so the stack property stays intact.
     * Pinned rows reduce the row slots available to the LRU side.
     */
    void pin(const std::vector<int64_t>& rows);

    /**
     * Shrink the reservation to @p new_capacity_bytes (clamped to
     * [0, current]), evicting resident rows until they fit and
     * returning the difference to the device. Counts one release.
     * Used by the resilient trainer when a re-plan no longer fits.
     */
    void shrinkTo(int64_t new_capacity_bytes);

    /** shrinkTo(0): give the whole reservation back. */
    void releaseAll() { shrinkTo(0); }

    /** Drop all residency state (rows become cold) without touching
     * the reservation. Resume paths use this: checkpoints never
     * persist cache contents, so a resumed run starts cold. */
    void invalidate();

    /** Record every evicted row ID into evictionLog() (off by
     * default; the determinism tests turn it on). */
    void setRecordEvictions(bool record);

    /** Evicted row IDs in eviction order (needs setRecordEvictions). */
    std::vector<int64_t> evictionLog() const;

    FeatureCacheStats stats() const;

    int64_t rowBytes() const { return row_bytes_; }
    int64_t capacityBytes() const;
    int64_t capacityRows() const;
    /** Reservation currently charged into the device model. */
    int64_t reservedBytes() const;
    int64_t residentRows() const;
    int64_t pinnedRows() const;
    CachePolicy policy() const { return policy_; }

  private:
    /** Evict LRU rows until at most @p max_rows are resident
     * (mutex held by caller). */
    void evictDownToLocked(int64_t max_rows);

    const int64_t row_bytes_;
    const CachePolicy policy_;
    DeviceMemoryModel* device_;

    mutable std::mutex mutex_;
    int64_t reserved_bytes_ = 0; ///< currently charged into device_
    int64_t capacity_rows_ = 0;

    /** LRU order, front = most recent. Pinned rows are NOT listed. */
    std::list<int64_t> lru_;
    struct Entry
    {
        bool pinned = false;
        std::list<int64_t>::iterator it; ///< valid iff !pinned
    };
    std::unordered_map<int64_t, Entry> resident_;
    int64_t pinned_rows_ = 0;

    FeatureCacheStats stats_;
    bool record_evictions_ = false;
    std::vector<int64_t> eviction_log_;
};

} // namespace betty

#endif // BETTY_CACHE_FEATURE_CACHE_H
