#include "train/trainer.h"

#include <future>

#include "cache/feature_cache.h"
#include "kernels/kernels.h"
#include "memory/estimator.h"
#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "robustness/retry.h"
#include "tensor/autograd.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace betty {

namespace {

int64_t
batchNodeCount(const MultiLayerBatch& batch)
{
    int64_t total = 0;
    for (const auto& block : batch.blocks)
        total += block.numSrc();
    return total;
}

/** Per-micro-batch wall-time histogram (1ms .. ~16s buckets). */
obs::Histogram&
microBatchSecondsHistogram()
{
    static obs::Histogram& histogram = obs::Metrics::histogram(
        "trainer.microbatch_seconds",
        {0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128,
         0.256, 0.512, 1.0, 2.0, 4.0, 8.0, 16.0});
    return histogram;
}

} // namespace

Trainer::Trainer(const Dataset& dataset, GnnModel& model,
                 Optimizer& optimizer, DeviceMemoryModel* device,
                 TransferModel* transfer)
    : dataset_(dataset), model_(model), optimizer_(optimizer),
      device_(device), transfer_(transfer)
{
}

int64_t
Trainer::blockBytes(const MultiLayerBatch& batch)
{
    // Paper item (4): "the size of a block is E x 3" elements; the
    // formula lives with the batch so the estimator prices the same
    // bytes the trainers charge.
    return batch.structureBytes();
}

/** Host-side label bytes charged to the device per batch (item (3)). */
static int64_t
labelBytes(const MultiLayerBatch& batch)
{
    return int64_t(batch.outputNodes().size()) *
           int64_t(sizeof(int32_t));
}

Trainer::StagedFeatures
Trainer::gatherFeatures(const MultiLayerBatch& batch,
                        int64_t micro_batch)
{
    // The host-side gather IS the transfer work in this simulated
    // setup, so the span covers gather + the analytic charge. Under
    // pipelining this runs on a pool worker, whose lane shows the
    // span overlapping the training thread's compute spans.
    BETTY_TRACE_SPAN_CAT("train/transfer", "transfer");
    const auto& inputs = batch.inputNodes();
    const int64_t dim = dataset_.featureDim();
    StagedFeatures staged;
    staged.rows = int64_t(inputs.size());
    staged.values.resize(inputs.size() * size_t(dim));
    if (!staged.values.empty()) {
        BETTY_TRACE_SPAN_CAT("train/gather", "gather");
        kernels::gatherRows(dataset_.features.data(),
                            dataset_.numNodes(), dim, inputs.data(),
                            staged.rows, staged.values.data());
    }
    // Feature-cache consult: rows already resident on the device do
    // not cross the link again. The gather above still read EVERY row
    // from the host dataset, so feature values — and with them all
    // numerics — are identical with or without a cache; only the
    // transfer charge shrinks. Under pipelining this runs on a pool
    // worker, but the single-in-flight prefetch keeps gathers totally
    // ordered, so the cache's hit/miss/eviction sequence is the same
    // for every thread count.
    int64_t feature_bytes =
        int64_t(staged.values.size()) * int64_t(sizeof(float));
    if (cache_) {
        const FeatureCache::AccessResult cached = cache_->access(inputs);
        feature_bytes = cached.misses * dim * int64_t(sizeof(float));
        if (transfer_)
            transfer_->noteSavedBytes(cached.bytesSaved);
    }
    if (transfer_) {
        // Retry protocol (robustness/retry.h): scheduled
        // transfer-fail events and probabilistic transfer-flaky
        // draws are drained with bounded exponential backoff, each
        // failed attempt paying link latency + backoff as simulated
        // time. Consumption is keyed to this batch's logical
        // position, so a pipelined prefetch worker gathering ahead
        // of the clock still hits exactly the faults scheduled for
        // ITS micro-batch.
        robustness::runTransferRetries(*transfer_, micro_batch);
        transfer_->transfer(feature_bytes + blockBytes(batch));
    }
    return staged;
}

ag::NodePtr
Trainer::uploadFeatures(StagedFeatures staged)
{
    BETTY_TRACE_SPAN_CAT("train/upload", "transfer");
    obs::MemCategoryScope mem_scope(obs::MemCategory::InputFeatures);
    const int64_t dim = dataset_.featureDim();
    Tensor features(staged.rows, dim);
    std::copy(staged.values.begin(), staged.values.end(),
              features.data());
    return ag::constant(std::move(features));
}

ag::NodePtr
Trainer::loadFeatures(const MultiLayerBatch& batch,
                      int64_t micro_batch)
{
    return uploadFeatures(gatherFeatures(batch, micro_batch));
}

std::vector<int32_t>
Trainer::loadLabels(const MultiLayerBatch& batch) const
{
    const auto outputs = batch.outputNodes();
    std::vector<int32_t> labels;
    labels.reserve(outputs.size());
    for (int64_t node : outputs)
        labels.push_back(dataset_.labels[size_t(node)]);
    return labels;
}

Trainer::ForwardResult
Trainer::forwardBatch(const MultiLayerBatch& batch,
                      int64_t micro_batch)
{
    return forwardStaged(batch, gatherFeatures(batch, micro_batch));
}

Trainer::ForwardResult
Trainer::forwardStaged(const MultiLayerBatch& batch,
                       StagedFeatures staged)
{
    ForwardResult result;
    const auto features = uploadFeatures(std::move(staged));
    ag::NodePtr logits;
    {
        BETTY_TRACE_SPAN_CAT("train/forward", "compute");
        // Ambient category for layer outputs (item (5)); layers
        // override with Aggregator for their aggregation chains.
        obs::MemCategoryScope mem_scope(obs::MemCategory::Hidden);
        logits = model_.forward(batch, features);
    }
    BETTY_TRACE_SPAN_CAT("train/loss", "compute");
    auto labels = loadLabels(batch);
    result.correct = ag::countCorrect(logits->value, labels);
    result.outputs = int64_t(labels.size());
    result.loss = ag::softmaxCrossEntropy(logits, std::move(labels));
    return result;
}

EpochStats
Trainer::trainMicroBatches(
    const std::vector<MultiLayerBatch>& micro_batches)
{
    BETTY_TRACE_SPAN("train/accumulation_step");
    EpochStats stats;
    if (device_)
        device_->resetPeak();
    const int64_t oom_episodes_before =
        device_ ? device_->oomEpisodeCount() : 0;

    int64_t total_outputs = 0;
    for (const auto& batch : micro_batches)
        total_outputs += int64_t(batch.outputNodes().size());
    BETTY_ASSERT(total_outputs > 0, "no output nodes to train on");

    // Pipelined schedule: while micro-batch k computes on this
    // thread, a pool worker gathers micro-batch k+1's feature rows
    // into host staging and charges the TransferModel ("transfer of
    // k+1 while k's activations are live"). Exactly one prefetch is
    // in flight at a time and each is joined before the next is
    // submitted, so TransferModel updates are totally ordered, and
    // device-side allocations all stay on this thread in serial
    // order — every stat and every DeviceMemoryModel counter is
    // bit-identical to the serial schedule.
    std::vector<size_t> active;
    active.reserve(micro_batches.size());
    for (size_t i = 0; i < micro_batches.size(); ++i)
        if (!micro_batches[i].outputNodes().empty())
            active.push_back(i);
    const bool pipelined = pipeline_ &&
                           ThreadPool::globalThreads() > 1 &&
                           active.size() > 1;
    auto prefetch = [&](size_t index) {
        const MultiLayerBatch* next = &micro_batches[index];
        // The worker carries the batch's logical index so fault
        // consumption stays in program order even when the gather
        // runs ahead of the injector clock.
        return ThreadPool::global().submit([this, next, index] {
            obs::TraceSpan span("train/prefetch");
            StagedFeatures staged =
                gatherFeatures(*next, int64_t(index));
            staged.traceSpanId = span.id();
            return staged;
        });
    };

    optimizer_.zeroGrad();
    int64_t correct = 0;
    std::future<StagedFeatures> staged_next;
    // If the loop unwinds with a prefetch still queued or running, the
    // pool worker would keep touching *next (in micro_batches) and
    // transfer_ after this frame is gone — a packaged_task future's
    // destructor does not wait. Join it before propagating.
    struct PrefetchJoiner
    {
        std::future<StagedFeatures>& staged;
        ~PrefetchJoiner()
        {
            if (staged.valid()) {
                try {
                    staged.get();
                } catch (...) {
                }
            }
        }
    } prefetch_joiner{staged_next};
    if (pipelined)
        staged_next = prefetch(active.front());
    uint64_t prev_micro_span = 0;
    for (size_t pos = 0; pos < active.size(); ++pos) {
        const size_t index = active[pos];
        const MultiLayerBatch& batch = micro_batches[index];
        obs::TraceSpan micro_span("train/micro_batch");
        // Ordering edge: gradient accumulation serializes the
        // micro-batches of an epoch on this thread.
        obs::Trace::recordFlow(prev_micro_span, micro_span.id());
        prev_micro_span = micro_span.id();
        // Admission: the resilient runtime vetoes a micro-batch that
        // no longer fits the (possibly shrunken) budget BEFORE any
        // device charge, turning a would-be OOM into a clean abort.
        if (arbiter_ && !arbiter_->admit(index, batch)) {
            stats.aborted = true;
            stats.abortedMicroBatch = int64_t(index);
            break;
        }
        stats.inputNodesProcessed += int64_t(batch.inputNodes().size());
        stats.totalNodesProcessed += batchNodeCount(batch);

        const int64_t structure_bytes = blockBytes(batch);
        const int64_t label_bytes = labelBytes(batch);
        if (device_) {
            device_->resetWindow();
            device_->onAlloc(structure_bytes,
                             obs::MemCategory::Blocks);
            device_->onAlloc(label_bytes, obs::MemCategory::Labels);
        }
        {
            // All forward/backward temporaries of this micro-batch
            // bump-allocate from the trainer's arena; the scope closes
            // when the graph (fwd) is released, so the reset() below
            // reclaims them wholesale. The prefetch worker spawned
            // inside is unaffected — the scope is thread-local.
            kernels::ArenaScope arena_scope(arena_);
            Timer timer;
            ForwardResult fwd;
            if (pipelined) {
                StagedFeatures staged;
                {
                    // Time blocked on the prefetch(k) handoff is the
                    // pipeline stall the critpath analysis calls out.
                    BETTY_TRACE_SPAN_CAT("train/pipeline_wait",
                                         "stall");
                    staged = staged_next.get();
                }
                obs::Trace::recordFlow(staged.traceSpanId,
                                       micro_span.id());
                if (pos + 1 < active.size())
                    staged_next = prefetch(active[pos + 1]);
                fwd = forwardStaged(batch, std::move(staged));
            } else {
                fwd = forwardBatch(batch, int64_t(index));
            }
            // Weight each micro-batch's mean loss by its output share:
            // the accumulated gradient is then identical to the full
            // batch's mean-loss gradient (paper §4.2.3).
            const float weight =
                float(double(fwd.outputs) / double(total_outputs));
            {
                BETTY_TRACE_SPAN_CAT("train/backward", "compute");
                // Catches gradient temporaries allocated outside
                // Node::ensureGrad (item (7)).
                obs::MemCategoryScope mem_scope(
                    obs::MemCategory::Gradients);
                ag::backward(ag::scale(fwd.loss, weight));
            }
            stats.computeSeconds += timer.seconds();
            microBatchSecondsHistogram().observe(timer.seconds());
            stats.loss += double(fwd.loss->value.at(0, 0)) *
                          double(weight);
            correct += fwd.correct;
            // fwd's graph (all intermediate activations) is released
            // here — only parameter gradients persist, matching the
            // paper's "only the gradients are stored" (§4.2.3).
        }
        arena_.reset();
        if (device_) {
            device_->onFree(structure_bytes,
                            obs::MemCategory::Blocks);
            device_->onFree(label_bytes, obs::MemCategory::Labels);
            if (obs::Metrics::enabled()) {
                // Estimator-residual telemetry: what the planner's
                // model predicted for this micro-batch vs. what the
                // device actually reached (paper §4.4, Table 3) —
                // in total and per component.
                const MemoryEstimate predicted = estimateBatchMemory(
                    batch, model_.memorySpec());
                obs::residuals().record(predicted.peak,
                                        device_->windowPeakBytes());
                obs::MicroBatchMemRecord record;
                record.actualTotalPeak = device_->windowPeakBytes();
                record.predictedTotalPeak = predicted.peak;
                for (size_t c = 0; c < obs::kMemCategoryCount; ++c) {
                    const auto category = obs::MemCategory(c);
                    record.actualPeak[c] =
                        device_->windowPeakBytes(category);
                    record.predicted[c] =
                        componentBytes(predicted, category);
                }
                obs::memProfiler().record(record);
            }
        }
        // Review: the resilient runtime inspects what the micro-batch
        // actually did (window peak vs. the new budget) and may still
        // abort the step after the fact.
        if (arbiter_ && !arbiter_->review(index, batch)) {
            stats.aborted = true;
            stats.abortedMicroBatch = int64_t(index);
            break;
        }
    }

    if (stats.aborted) {
        // Deterministic rollback: all K micro-batches accumulate into
        // the SAME parameter gradients and nothing else mutates until
        // the final step() (paper §4.2.3), so zeroing the gradients
        // restores the exact pre-call training state — parameters,
        // Adam moments, and step count are untouched. The caller can
        // re-plan and retry as if this attempt never happened.
        optimizer_.zeroGrad();
    } else {
        BETTY_TRACE_SPAN_CAT("train/step", "compute");
        Timer timer;
        optimizer_.step();
        stats.computeSeconds += timer.seconds();
    }

    stats.accuracy = double(correct) / double(total_outputs);
    if (transfer_) {
        stats.transferSeconds = transfer_->seconds();
        transfer_->reset();
    }
    if (device_) {
        stats.peakBytes = device_->peakBytes();
        stats.oom = device_->oomOccurred();
        stats.oomEvents =
            device_->oomEpisodeCount() - oom_episodes_before;
        if (stats.oom)
            warnOnce("device budget exceeded during micro-batch "
                     "training (worst overshoot ",
                     device_->worstOvershoot(),
                     " bytes); reporting once — see the "
                     "device.oom_events metric for the full count");
    }
    return stats;
}

EpochStats
Trainer::trainMiniBatches(const std::vector<MultiLayerBatch>& batches)
{
    BETTY_TRACE_SPAN("train/mini_batch_epoch");
    EpochStats stats;
    if (device_)
        device_->resetPeak();
    const int64_t oom_episodes_before =
        device_ ? device_->oomEpisodeCount() : 0;

    int64_t total_outputs = 0;
    int64_t correct = 0;
    double loss_sum = 0.0;
    for (const auto& batch : batches) {
        const int64_t outputs = int64_t(batch.outputNodes().size());
        if (outputs == 0)
            continue;
        stats.inputNodesProcessed += int64_t(batch.inputNodes().size());
        stats.totalNodesProcessed += batchNodeCount(batch);
        total_outputs += outputs;

        const int64_t structure_bytes = blockBytes(batch);
        const int64_t label_bytes = labelBytes(batch);
        if (device_) {
            device_->onAlloc(structure_bytes,
                             obs::MemCategory::Blocks);
            device_->onAlloc(label_bytes, obs::MemCategory::Labels);
        }
        {
            BETTY_TRACE_SPAN("train/micro_batch");
            // step() runs inside the scope, but optimizer state and
            // parameter gradients are arena-suspended at allocation —
            // only the graph temporaries land in the arena.
            kernels::ArenaScope arena_scope(arena_);
            Timer timer;
            optimizer_.zeroGrad();
            // Mini-batch mode has no micro-batch fault clock; -1 =
            // only epoch-scoped transfer faults apply.
            ForwardResult fwd = forwardBatch(batch, -1);
            {
                BETTY_TRACE_SPAN_CAT("train/backward", "compute");
                obs::MemCategoryScope mem_scope(
                    obs::MemCategory::Gradients);
                ag::backward(fwd.loss);
            }
            {
                BETTY_TRACE_SPAN_CAT("train/step", "compute");
                optimizer_.step();
            }
            stats.computeSeconds += timer.seconds();
            microBatchSecondsHistogram().observe(timer.seconds());
            loss_sum += double(fwd.loss->value.at(0, 0)) *
                        double(outputs);
            correct += fwd.correct;
        }
        arena_.reset();
        if (device_) {
            device_->onFree(structure_bytes,
                            obs::MemCategory::Blocks);
            device_->onFree(label_bytes, obs::MemCategory::Labels);
        }
    }
    BETTY_ASSERT(total_outputs > 0, "no output nodes to train on");

    stats.loss = loss_sum / double(total_outputs);
    stats.accuracy = double(correct) / double(total_outputs);
    if (transfer_) {
        stats.transferSeconds = transfer_->seconds();
        transfer_->reset();
    }
    if (device_) {
        stats.peakBytes = device_->peakBytes();
        stats.oom = device_->oomOccurred();
        stats.oomEvents =
            device_->oomEpisodeCount() - oom_episodes_before;
    }
    return stats;
}

double
Trainer::evaluate(const MultiLayerBatch& batch)
{
    BETTY_TRACE_SPAN_CAT("train/evaluate", "compute");
    double accuracy = 0.0;
    {
        kernels::ArenaScope arena_scope(arena_);
        const auto features = loadFeatures(batch, -1);
        const auto logits = model_.forward(batch, features);
        const auto labels = loadLabels(batch);
        if (!labels.empty())
            accuracy =
                double(ag::countCorrect(logits->value, labels)) /
                double(labels.size());
    }
    arena_.reset();
    return accuracy;
}

} // namespace betty
