#include "train/multi_device.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "kernels/arena.h"
#include "memory/estimator.h"
#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "robustness/retry.h"
#include "tensor/autograd.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace betty {

namespace {

/** The sharder's per-batch cost: feature bytes + structure bytes —
 * the dominant memory and transfer load of the batch. */
int64_t
shardCost(const MultiLayerBatch& batch, int64_t feature_dim)
{
    return int64_t(batch.inputNodes().size()) * feature_dim *
               int64_t(sizeof(float)) +
           batch.structureBytes();
}

} // namespace

std::vector<int32_t>
scheduleLpt(const std::vector<int64_t>& costs, int32_t num_devices)
{
    BETTY_ASSERT(num_devices >= 1, "need at least one device");
    std::vector<int32_t> assignment(costs.size(), 0);
    if (num_devices == 1)
        return assignment;

    // Longest processing time first onto the least-loaded device.
    std::vector<size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return costs[a] > costs[b];
    });
    std::vector<int64_t> load(size_t(num_devices), 0);
    for (size_t idx : order) {
        const int32_t device = int32_t(
            std::min_element(load.begin(), load.end()) - load.begin());
        assignment[idx] = device;
        load[size_t(device)] += costs[idx];
    }
    return assignment;
}

ShardPlan
shardVertexCut(const std::vector<MultiLayerBatch>& micros,
               int32_t num_devices, int64_t feature_dim,
               double balance_slack)
{
    BETTY_ASSERT(num_devices >= 1, "need at least one device");
    BETTY_ASSERT(balance_slack >= 1.0, "balance slack must be >= 1");
    ShardPlan plan;
    plan.assignment.assign(micros.size(), -1);
    plan.deviceCostBytes.assign(size_t(num_devices), 0);
    plan.deviceUniqueInputs.assign(size_t(num_devices), 0);

    std::vector<int64_t> cost(micros.size(), 0);
    std::vector<size_t> order;
    order.reserve(micros.size());
    int64_t total_cost = 0;
    for (size_t i = 0; i < micros.size(); ++i) {
        if (micros[i].outputNodes().empty())
            continue;
        cost[i] = shardCost(micros[i], feature_dim);
        total_cost += cost[i];
        order.push_back(i);
    }
    // LPT order with the index as tie-breaker: a total order, so the
    // plan is a pure function of the batches — never of thread count
    // or iteration timing.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (cost[a] != cost[b])
            return cost[a] > cost[b];
        return a < b;
    });

    const double cap =
        balance_slack * double(total_cost) / double(num_devices);
    std::vector<std::unordered_set<int64_t>> inputs;
    inputs.resize(size_t(num_devices));
    std::unordered_set<int64_t> global;
    for (size_t i : order) {
        // Overlap-first among the devices still under the balance
        // cap: placing a batch beside the batches it shares input
        // vertices with is what keeps the halo (and with it the
        // duplicated feature transfers) small.
        int32_t best = -1;
        int64_t best_overlap = -1;
        for (int32_t d = 0; d < num_devices; ++d) {
            if (double(plan.deviceCostBytes[size_t(d)] + cost[i]) >
                cap)
                continue;
            int64_t overlap = 0;
            const auto& set = inputs[size_t(d)];
            for (int64_t node : micros[i].inputNodes())
                overlap += set.count(node) ? 1 : 0;
            if (overlap > best_overlap ||
                (overlap == best_overlap && best >= 0 &&
                 plan.deviceCostBytes[size_t(d)] <
                     plan.deviceCostBytes[size_t(best)]))
            {
                best = d;
                best_overlap = overlap;
            }
        }
        if (best < 0) {
            // Nothing fits under the cap (one huge batch): fall back
            // to the least-loaded device, which bounds the load at
            // total/devices + the largest single cost.
            for (int32_t d = 0; d < num_devices; ++d)
                if (best < 0 ||
                    plan.deviceCostBytes[size_t(d)] <
                        plan.deviceCostBytes[size_t(best)])
                    best = d;
        }
        plan.assignment[i] = best;
        plan.deviceCostBytes[size_t(best)] += cost[i];
        for (int64_t node : micros[i].inputNodes()) {
            inputs[size_t(best)].insert(node);
            global.insert(node);
        }
    }

    int64_t replicated = 0;
    for (int32_t d = 0; d < num_devices; ++d) {
        plan.deviceUniqueInputs[size_t(d)] =
            int64_t(inputs[size_t(d)].size());
        replicated += plan.deviceUniqueInputs[size_t(d)];
    }
    plan.globalUniqueInputs = int64_t(global.size());
    plan.duplicationFactor =
        plan.globalUniqueInputs > 0
            ? double(replicated) / double(plan.globalUniqueInputs)
            : 1.0;
    return plan;
}

double
shardDuplicationFactor(const std::vector<MultiLayerBatch>& micros,
                       const std::vector<int32_t>& assignment)
{
    BETTY_ASSERT(assignment.size() == micros.size(),
                 "assignment does not match the micro-batches");
    std::unordered_map<int32_t, std::unordered_set<int64_t>> inputs;
    std::unordered_set<int64_t> global;
    for (size_t i = 0; i < micros.size(); ++i) {
        if (assignment[i] < 0)
            continue;
        auto& set = inputs[assignment[i]];
        for (int64_t node : micros[i].inputNodes()) {
            set.insert(node);
            global.insert(node);
        }
    }
    if (global.empty())
        return 1.0;
    int64_t replicated = 0;
    for (const auto& entry : inputs)
        replicated += int64_t(entry.second.size());
    return double(replicated) / double(global.size());
}

std::vector<int32_t>
roundRobinAssignment(const std::vector<MultiLayerBatch>& micros,
                     int32_t num_devices)
{
    BETTY_ASSERT(num_devices >= 1, "need at least one device");
    std::vector<int32_t> assignment(micros.size(), -1);
    int32_t next = 0;
    for (size_t i = 0; i < micros.size(); ++i) {
        if (micros[i].outputNodes().empty())
            continue;
        assignment[i] = next;
        next = (next + 1) % num_devices;
    }
    return assignment;
}

MultiDeviceEngine::MultiDeviceEngine(const Dataset& dataset,
                                     GnnModel& model,
                                     Optimizer& optimizer,
                                     MultiDeviceConfig config)
    : dataset_(dataset), model_(model), optimizer_(optimizer),
      config_(std::move(config)),
      numerics_(dataset, model, optimizer),
      interconnect_(config_.interconnect)
{
    BETTY_ASSERT(config_.numDevices >= 1, "need at least one device");
    const int64_t row_bytes =
        dataset_.featureDim() * int64_t(sizeof(float));
    devices_.reserve(size_t(config_.numDevices));
    for (int32_t d = 0; d < config_.numDevices; ++d) {
        auto state = std::make_unique<DeviceState>(
            config_.deviceCapacityBytes, config_.hostLinkBandwidth);
        if (config_.cacheBytesPerDevice > 0)
            state->cache = std::make_unique<FeatureCache>(
                &state->memory, config_.cacheBytesPerDevice,
                row_bytes, config_.cachePolicy);
        devices_.push_back(std::move(state));
    }
}

int32_t
MultiDeviceEngine::liveDevices() const
{
    int32_t live = 0;
    for (const auto& device : devices_)
        live += device->dead ? 0 : 1;
    return live;
}

std::vector<int32_t>
MultiDeviceEngine::liveDeviceIds() const
{
    std::vector<int32_t> live;
    live.reserve(devices_.size());
    for (size_t d = 0; d < devices_.size(); ++d)
        if (!devices_[d]->dead)
            live.push_back(int32_t(d));
    return live;
}

Trainer::StagedFeatures
MultiDeviceEngine::gatherStaged(const MultiLayerBatch& batch,
                                int32_t device)
{
    // The gather lands in the owning device's trace lane whether it
    // runs on a pool worker (pipelined dispatch) or inline — the
    // Chrome trace shows one swimlane per device either way.
    obs::TraceLaneScope lane(1000 + device,
                             "device" + std::to_string(device));
    obs::TraceSpan span("multi/gather", "transfer");
    Trainer::StagedFeatures staged;
    const auto& inputs = batch.inputNodes();
    const int64_t dim = dataset_.featureDim();
    staged.rows = int64_t(inputs.size());
    staged.values.resize(inputs.size() * size_t(dim));
    for (size_t i = 0; i < inputs.size(); ++i) {
        const int64_t node = inputs[i];
        BETTY_ASSERT(node >= 0 && node < dataset_.numNodes(),
                     "input node out of range");
        std::copy_n(dataset_.features.data() + node * dim, dim,
                    staged.values.data() + int64_t(i) * dim);
    }
    staged.traceSpanId = span.id();
    return staged;
}

void
MultiDeviceEngine::consumeDeviceDrops(
    const std::vector<MultiLayerBatch>& micros,
    const std::vector<size_t>& active, size_t next_pos,
    std::vector<int32_t>& owner, int64_t* drops)
{
    int64_t requested = -1;
    while (fault::Injector::takeDeviceDrop(&requested)) {
        const std::vector<int32_t> live = liveDeviceIds();
        if (live.size() <= 1) {
            warnOnce("device-drop fault ignored: only one live "
                     "device remains");
            continue;
        }
        int32_t victim = -1;
        if (requested >= 0) {
            if (requested >= int64_t(devices_.size()) ||
                devices_[size_t(requested)]->dead) {
                warnOnce("device-drop fault names device ", requested,
                         " which is not a live device; ignored");
                continue;
            }
            victim = int32_t(requested);
        } else {
            victim = live.back();
        }
        DeviceState& lost = *devices_[size_t(victim)];
        lost.dead = true;
        if (lost.cache)
            lost.cache->releaseAll();
        ++*drops;
        obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                    "multi/device-drop", victim,
                                    int64_t(next_pos));
        // A dead device leaves the ring; if it was the degraded lane
        // the collective speeds back up.
        refreshInterconnectSlowdown();

        // Re-shard the victim's pending micro-batches over the
        // survivors. Already-executed batches keep their attribution
        // — their gradients are valid contributions, charged where
        // they actually ran.
        reshardPending(micros, active, next_pos, owner, victim,
                       liveDeviceIds(), "multi/reshard");
    }
}

int64_t
MultiDeviceEngine::reshardPending(
    const std::vector<MultiLayerBatch>& micros,
    const std::vector<size_t>& active, size_t next_pos,
    std::vector<int32_t>& owner, int32_t victim,
    const std::vector<int32_t>& targets, const char* reason)
{
    // Same overlap-first greedy as shardVertexCut, seeded with the
    // targets' current working sets (inputs of everything they own,
    // executed or pending).
    const int64_t dim = dataset_.featureDim();
    std::unordered_map<int32_t, std::unordered_set<int64_t>> inputs;
    std::unordered_map<int32_t, int64_t> load;
    for (int32_t d : targets) {
        inputs[d];
        load[d] = 0;
    }
    for (size_t i = 0; i < micros.size(); ++i) {
        const int32_t d = owner[i];
        if (d < 0 || !inputs.count(d))
            continue;
        for (int64_t node : micros[i].inputNodes())
            inputs[d].insert(node);
        load[d] += shardCost(micros[i], dim);
    }
    int64_t moved = 0;
    for (size_t pos = next_pos; pos < active.size(); ++pos) {
        const size_t index = active[pos];
        if (owner[index] != victim)
            continue;
        int32_t best = -1;
        int64_t best_overlap = -1;
        for (int32_t d : targets) {
            int64_t overlap = 0;
            const auto& set = inputs[d];
            for (int64_t node : micros[index].inputNodes())
                overlap += set.count(node) ? 1 : 0;
            if (overlap > best_overlap ||
                (overlap == best_overlap && best >= 0 &&
                 load[d] < load[best]))
            {
                best = d;
                best_overlap = overlap;
            }
        }
        owner[index] = best;
        ++moved;
        for (int64_t node : micros[index].inputNodes())
            inputs[best].insert(node);
        load[best] += shardCost(micros[index], dim);
        obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                    reason, int64_t(index), best);
    }
    return moved;
}

void
MultiDeviceEngine::refreshInterconnectSlowdown()
{
    double worst = 1.0;
    for (const auto& device : devices_)
        if (!device->dead && device->degraded)
            worst = std::max(worst, device->slowFactor);
    interconnect_.setSlowdown(worst);
}

void
MultiDeviceEngine::healExpiredSlowdowns(int64_t epoch)
{
    bool changed = false;
    for (size_t d = 0; d < devices_.size(); ++d) {
        DeviceState& state = *devices_[d];
        if (!state.degraded || state.slowUntilEpoch < 0 ||
            epoch <= state.slowUntilEpoch)
            continue;
        state.degraded = false;
        state.slowFactor = 1.0;
        state.slowUntilEpoch = -1;
        state.link.setSlowdown(1.0);
        changed = true;
        obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                    "multi/device-heal", int64_t(d),
                                    epoch);
    }
    if (changed)
        refreshInterconnectSlowdown();
}

void
MultiDeviceEngine::consumeDeviceSlow(int64_t epoch,
                                     int64_t* slow_faults)
{
    double factor = 1.0;
    int64_t requested = -1;
    int64_t duration = 0;
    while (fault::Injector::takeDeviceSlow(&factor, &requested,
                                           &duration)) {
        const std::vector<int32_t> live = liveDeviceIds();
        int32_t victim = -1;
        if (requested >= 0) {
            if (requested >= int64_t(devices_.size()) ||
                devices_[size_t(requested)]->dead) {
                // The event was consumed (and the injector charged
                // it), so it still counts toward the engine's fault
                // tally — the chaos tier cross-checks the two.
                warnOnce("device-slow fault names device ", requested,
                         " which is not a live device; ignored");
                ++*slow_faults;
                obs::FlightRecorder::record(
                    obs::FrCategory::Recovery,
                    "multi/device-slow-ignored", requested, epoch);
                continue;
            }
            victim = int32_t(requested);
        } else {
            victim = live.back();
        }
        DeviceState& state = *devices_[size_t(victim)];
        state.degraded = true;
        state.slowFactor = std::max(state.slowFactor, factor);
        state.slowUntilEpoch =
            duration > 0 ? epoch + duration - 1 : -1;
        state.link.setSlowdown(state.slowFactor);
        refreshInterconnectSlowdown();
        ++*slow_faults;
        obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                    "multi/device-slow", victim,
                                    int64_t(factor * 1000.0));
    }
}

MultiDeviceStats
MultiDeviceEngine::trainMicroBatches(
    const std::vector<MultiLayerBatch>& micro_batches)
{
    return run(micro_batches, /*fault_clock=*/false, /*epoch=*/0);
}

MultiDeviceStats
MultiDeviceEngine::trainEpoch(
    const std::vector<MultiLayerBatch>& micro_batches, int64_t epoch)
{
    fault::Injector::beginEpoch(epoch);
    // Slowdowns with a duration heal BEFORE this epoch's faults are
    // consumed — a duration=1 slowdown covers exactly one epoch.
    healExpiredSlowdowns(epoch);
    return run(micro_batches, /*fault_clock=*/true, epoch);
}

MultiDeviceStats
MultiDeviceEngine::run(const std::vector<MultiLayerBatch>& micros,
                       bool fault_clock, int64_t epoch)
{
    BETTY_TRACE_SPAN("multi/accumulation_step");
    MultiDeviceStats stats;
    const size_t num_devices = devices_.size();
    stats.batchesPerDevice.assign(num_devices, 0);
    stats.deviceSeconds.assign(num_devices, 0.0);
    stats.deviceComputeSeconds.assign(num_devices, 0.0);
    stats.deviceTransferSeconds.assign(num_devices, 0.0);
    stats.deviceTransferBytes.assign(num_devices, 0);
    stats.devicePeakBytes.assign(num_devices, 0);

    int64_t total_outputs = 0;
    for (const auto& batch : micros)
        total_outputs += int64_t(batch.outputNodes().size());
    BETTY_ASSERT(total_outputs > 0, "no output nodes to train on");

    std::vector<size_t> active;
    active.reserve(micros.size());
    for (size_t i = 0; i < micros.size(); ++i)
        if (!micros[i].outputNodes().empty())
            active.push_back(i);

    int64_t drops = 0;
    int64_t slow_faults = 0;
    std::vector<int32_t> owner(micros.size(), -1);
    // Epoch-scoped device drops fire BEFORE sharding: the epoch
    // shards directly over the survivors, which is exactly "running
    // on N-1 devices from the start" for this epoch. Epoch-scoped
    // slowdowns also land here, before any transfer is priced.
    if (fault_clock) {
        consumeDeviceDrops(micros, active, 0, owner, &drops);
        consumeDeviceSlow(epoch, &slow_faults);
    }

    const std::vector<int32_t> live = liveDeviceIds();
    last_plan_ = shardVertexCut(micros, int32_t(live.size()),
                                dataset_.featureDim(),
                                config_.balanceSlack);
    for (size_t i = 0; i < micros.size(); ++i)
        if (last_plan_.assignment[i] >= 0)
            owner[i] = live[size_t(last_plan_.assignment[i])];

    // Parameter gradients outlive the per-device memory models'
    // scopes; allocate them under the CALLER's observer (where the
    // parameters themselves live) so no storage ever reports a free
    // to the wrong device.
    for (const auto& p : model_.parameters())
        p->ensureGrad();
    optimizer_.zeroGrad();

    std::vector<FeatureCacheStats> cache_before(num_devices);
    for (size_t d = 0; d < num_devices; ++d) {
        devices_[d]->memory.resetPeak();
        devices_[d]->link.reset();
        if (devices_[d]->cache)
            cache_before[d] = devices_[d]->cache->stats();
    }

    // Pipelined dispatch: every active micro-batch's host-side
    // feature gather is submitted to the pool up front, labelled with
    // its owning device's lane. Staging buffers are plain host
    // memory (unobserved), and ALL device charges happen at
    // consumption time below, on this thread, in canonical order —
    // so accounting is bit-identical to the inline schedule, for any
    // thread count and any fault timing.
    const bool pipelined = config_.pipeline &&
                           ThreadPool::globalThreads() > 1 &&
                           active.size() > 1;
    std::vector<std::future<Trainer::StagedFeatures>> prefetched;
    // If the loop unwinds early, pool workers would keep touching
    // micros and dataset_ after this frame is gone; drain first.
    struct DispatchJoiner
    {
        std::vector<std::future<Trainer::StagedFeatures>>& futures;
        ~DispatchJoiner()
        {
            for (auto& future : futures) {
                if (future.valid()) {
                    try {
                        future.get();
                    } catch (...) {
                    }
                }
            }
        }
    } dispatch_joiner{prefetched};
    if (pipelined) {
        prefetched.reserve(active.size());
        for (size_t pos = 0; pos < active.size(); ++pos) {
            const size_t index = active[pos];
            const int32_t device = owner[index];
            obs::FlightRecorder::record(obs::FrCategory::Mark,
                                        "multi/dispatch",
                                        int64_t(index), device);
            const MultiLayerBatch* batch = &micros[index];
            prefetched.push_back(ThreadPool::global().submit(
                [this, batch, device] {
                    return gatherStaged(*batch, device);
                }));
        }
    }

    // Straggler supervisor state: per-device EWMA of SIMULATED link
    // seconds per micro-batch — deterministic, unlike wall-clock
    // compute — judged against the fastest healthy device. Only
    // armed in fault-injected epochs: in fault-free runs the engine
    // must be invisible (no attribution drift for the report gates).
    const bool supervise = fault_clock &&
                           config_.stragglerFactor > 0.0 &&
                           fault::Injector::active();
    std::vector<double> ewma(num_devices, 0.0);
    std::vector<int32_t> ewma_samples(num_devices, 0);
    std::vector<char> flagged(num_devices, 0);

    int64_t correct = 0;
    uint64_t prev_micro_span = 0;
    for (size_t pos = 0; pos < active.size(); ++pos) {
        const size_t index = active[pos];
        if (fault_clock) {
            fault::Injector::beginMicroBatch(int64_t(index));
            // A mid-epoch drop re-shards this and all later pending
            // batches; gathers already dispatched for the dead device
            // stay valid (host staging), only the charges move.
            consumeDeviceDrops(micros, active, pos, owner, &drops);
            consumeDeviceSlow(epoch, &slow_faults);
        }
        const MultiLayerBatch& batch = micros[index];
        const int32_t device = owner[index];
        DeviceState& state = *devices_[size_t(device)];
        obs::TraceSpan micro_span("train/micro_batch");
        // Ordering edge: gradient accumulation serializes the
        // micro-batches of an epoch on this thread.
        obs::Trace::recordFlow(prev_micro_span, micro_span.id());
        prev_micro_span = micro_span.id();
        stats.inputNodesProcessed +=
            int64_t(batch.inputNodes().size());
        for (const auto& block : batch.blocks)
            stats.totalNodesProcessed += block.numSrc();

        Trainer::StagedFeatures staged;
        if (pipelined) {
            {
                // Time blocked on the dispatch handoff is the
                // cross-device stall critpath calls out.
                BETTY_TRACE_SPAN_CAT("multi/dispatch_wait", "stall");
                staged = prefetched[pos].get();
            }
        } else {
            staged = gatherStaged(batch, device);
        }
        obs::Trace::recordFlow(staged.traceSpanId, micro_span.id());

        // Charge-at-consumption: cache consult, link charge, and
        // every tensor allocation happen here under THIS device's
        // scope, in canonical micro-batch order.
        DeviceMemoryModel::Scope scope(state.memory);
        state.memory.resetWindow();
        const int64_t structure_bytes = batch.structureBytes();
        const int64_t label_bytes =
            int64_t(batch.outputNodes().size()) *
            int64_t(sizeof(int32_t));
        state.memory.onAlloc(structure_bytes,
                             obs::MemCategory::Blocks);
        state.memory.onAlloc(label_bytes, obs::MemCategory::Labels);
        const double link_before = state.link.seconds();
        {
            // The shared numeric trainer's arena backs this micro-
            // batch's graph temporaries (same lifecycle as the
            // single-device path; reset below once the graph is gone).
            kernels::ArenaScope arena_scope(numerics_.arena_);
            Timer timer;
            int64_t feature_bytes = int64_t(staged.values.size()) *
                                    int64_t(sizeof(float));
            if (state.cache) {
                const FeatureCache::AccessResult cached =
                    state.cache->access(batch.inputNodes());
                feature_bytes = cached.misses *
                                dataset_.featureDim() *
                                int64_t(sizeof(float));
                state.link.noteSavedBytes(cached.bytesSaved);
            }
            // Per-attempt transfer faults on this device's link are
            // drained by the shared retry protocol before the copy
            // goes through (robustness/retry.h), keyed to the
            // batch's logical position.
            if (fault_clock)
                robustness::runTransferRetries(state.link,
                                               int64_t(index));
            state.link.transfer(feature_bytes + structure_bytes);
            // The numeric core is the single-device trainer's own
            // forwardStaged — same ops, same order, so losses and
            // gradients are bit-identical by construction.
            Trainer::ForwardResult fwd =
                numerics_.forwardStaged(batch, std::move(staged));
            const float weight =
                float(double(fwd.outputs) / double(total_outputs));
            {
                BETTY_TRACE_SPAN_CAT("train/backward", "compute");
                obs::MemCategoryScope mem_scope(
                    obs::MemCategory::Gradients);
                ag::backward(ag::scale(fwd.loss, weight));
            }
            stats.deviceComputeSeconds[size_t(device)] +=
                timer.seconds();
            stats.loss +=
                double(fwd.loss->value.at(0, 0)) * double(weight);
            correct += fwd.correct;
            // fwd's graph (all intermediate activations) is released
            // here, inside the device scope that charged it.
        }
        numerics_.arena_.reset();
        ++stats.batchesPerDevice[size_t(device)];
        // Straggler supervisor: fold this micro-batch's simulated
        // link seconds (transfer + failed attempts + backoff) into
        // the device's EWMA and compare against the fastest healthy
        // reference. Detection uses observed timings only — never
        // the ground-truth `degraded` flag — so it also catches
        // degradations nobody scheduled.
        if (supervise) {
            const double mb_link_seconds =
                state.link.seconds() - link_before;
            ++ewma_samples[size_t(device)];
            ewma[size_t(device)] =
                ewma_samples[size_t(device)] == 1
                    ? mb_link_seconds
                    : config_.stragglerEwmaAlpha * mb_link_seconds +
                          (1.0 - config_.stragglerEwmaAlpha) *
                              ewma[size_t(device)];
            if (!flagged[size_t(device)] &&
                ewma_samples[size_t(device)] >=
                    config_.minStragglerSamples)
            {
                double fastest = -1.0;
                std::vector<int32_t> healthy;
                for (int32_t d : liveDeviceIds()) {
                    if (d == device || flagged[size_t(d)])
                        continue;
                    healthy.push_back(d);
                    if (ewma_samples[size_t(d)] >=
                            config_.minStragglerSamples &&
                        (fastest < 0.0 ||
                         ewma[size_t(d)] < fastest))
                        fastest = ewma[size_t(d)];
                }
                if (fastest > 0.0 &&
                    ewma[size_t(device)] >
                        config_.stragglerFactor * fastest &&
                    !healthy.empty())
                {
                    BETTY_TRACE_SPAN_CAT("multi/straggler_reshard",
                                         "stall");
                    flagged[size_t(device)] = 1;
                    ++stats.stragglersDetected;
                    obs::FlightRecorder::record(
                        obs::FrCategory::Recovery,
                        "multi/straggler", device, int64_t(pos));
                    // Graceful degradation: pending batches drain
                    // toward healthy devices; the straggler keeps
                    // what it already ran and stays in the ring.
                    stats.stragglerResharded += reshardPending(
                        micros, active, pos + 1, owner, device,
                        healthy, "multi/straggler-reshard");
                }
            }
        }
        state.memory.onFree(structure_bytes,
                            obs::MemCategory::Blocks);
        state.memory.onFree(label_bytes, obs::MemCategory::Labels);
        if (obs::Metrics::enabled()) {
            const MemoryEstimate predicted =
                estimateBatchMemory(batch, model_.memorySpec());
            obs::residuals().record(predicted.peak,
                                    state.memory.windowPeakBytes());
            obs::MicroBatchMemRecord record;
            record.actualTotalPeak = state.memory.windowPeakBytes();
            record.predictedTotalPeak = predicted.peak;
            for (size_t c = 0; c < obs::kMemCategoryCount; ++c) {
                const auto category = obs::MemCategory(c);
                record.actualPeak[c] =
                    state.memory.windowPeakBytes(category);
                record.predicted[c] =
                    componentBytes(predicted, category);
            }
            obs::memProfiler().record(record);
        }
    }

    // Deterministic ring all-reduce of the accumulated gradients
    // across the live devices, then one optimizer step. The cost is
    // purely analytic — no numeric reordering — which is what keeps
    // N-device parameters bit-identical to N=1.
    const std::vector<int32_t> live_after = liveDeviceIds();
    stats.liveDevices = int32_t(live_after.size());
    stats.deviceDrops = drops;
    stats.deviceSlowFaults = slow_faults;
    for (const auto& device : devices_)
        if (!device->dead && device->degraded)
            ++stats.degradedDevices;
    if (live_after.size() > 1) {
        int64_t grad_bytes = 0;
        for (const auto& p : model_.parameters())
            grad_bytes += p->value.bytes();
        BETTY_TRACE_SPAN_CAT("multi/allreduce", "transfer");
        stats.allreduceSeconds = interconnect_.chargeAllReduce(
            grad_bytes, int32_t(live_after.size()));
        obs::FlightRecorder::record(obs::FrCategory::Mark,
                                    "multi/allreduce", grad_bytes,
                                    int64_t(live_after.size()));
    }
    {
        BETTY_TRACE_SPAN_CAT("train/step", "compute");
        Timer timer;
        optimizer_.step();
        stats.allreduceSeconds += timer.seconds();
    }

    double max_busy = 0.0;
    for (size_t d = 0; d < num_devices; ++d) {
        DeviceState& state = *devices_[d];
        stats.deviceTransferSeconds[d] = state.link.seconds();
        stats.deviceTransferBytes[d] = state.link.totalBytes();
        stats.deviceSeconds[d] =
            stats.deviceComputeSeconds[d] + state.link.seconds();
        stats.devicePeakBytes[d] = state.memory.peakBytes();
        stats.maxDevicePeakBytes = std::max(stats.maxDevicePeakBytes,
                                            state.memory.peakBytes());
        stats.oom = stats.oom || state.memory.oomOccurred();
        max_busy = std::max(max_busy, stats.deviceSeconds[d]);
        if (state.cache) {
            const FeatureCacheStats now = state.cache->stats();
            stats.cacheHits += now.hits - cache_before[d].hits;
            stats.cacheMisses += now.misses - cache_before[d].misses;
            stats.cacheSavedBytes +=
                now.bytesSaved - cache_before[d].bytesSaved;
        }
        state.link.reset();
    }
    stats.duplicationFactor = shardDuplicationFactor(micros, owner);
    stats.epochSeconds = max_busy + stats.allreduceSeconds;
    stats.accuracy = double(correct) / double(total_outputs);

    if (obs::Metrics::enabled()) {
        obs::Metrics::gauge("multi.devices")
            .set(int64_t(stats.liveDevices));
        obs::Metrics::gauge("multi.duplication_factor_x1000")
            .set(int64_t(stats.duplicationFactor * 1000.0));
        obs::Metrics::gauge("multi.allreduce_microseconds")
            .set(int64_t(stats.allreduceSeconds * 1e6));
        if (drops > 0) {
            static obs::Counter& drop_counter =
                obs::Metrics::counter("multi.device_drops");
            drop_counter.add(drops);
        }
        obs::Metrics::gauge("multi.degraded")
            .set(int64_t(stats.degradedDevices));
        if (slow_faults > 0) {
            static obs::Counter& slow_counter =
                obs::Metrics::counter("multi.device_slow_faults");
            slow_counter.add(slow_faults);
        }
        if (stats.stragglersDetected > 0) {
            static obs::Counter& detected =
                obs::Metrics::counter("multi.stragglers_detected");
            detected.add(stats.stragglersDetected);
        }
        if (stats.stragglerResharded > 0) {
            static obs::Counter& resharded =
                obs::Metrics::counter("multi.straggler_reshards");
            resharded.add(stats.stragglerResharded);
        }
        for (size_t d = 0; d < num_devices; ++d) {
            const std::string prefix =
                "multi.device" + std::to_string(d);
            obs::Metrics::gauge(prefix + ".transfer_bytes")
                .set(stats.deviceTransferBytes[d]);
            obs::Metrics::gauge(prefix + ".peak_bytes")
                .set(stats.devicePeakBytes[d]);
        }
    }
    return stats;
}

} // namespace betty
