#include "train/multi_device.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/autograd.h"
#include "util/logging.h"
#include "util/timer.h"

namespace betty {

std::vector<int32_t>
scheduleLpt(const std::vector<int64_t>& costs, int32_t num_devices)
{
    BETTY_ASSERT(num_devices >= 1, "need at least one device");
    std::vector<int32_t> assignment(costs.size(), 0);
    if (num_devices == 1)
        return assignment;

    // Longest processing time first onto the least-loaded device.
    std::vector<size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return costs[a] > costs[b];
    });
    std::vector<int64_t> load(size_t(num_devices), 0);
    for (size_t idx : order) {
        const int32_t device = int32_t(
            std::min_element(load.begin(), load.end()) - load.begin());
        assignment[idx] = device;
        load[size_t(device)] += costs[idx];
    }
    return assignment;
}

MultiDeviceTrainer::MultiDeviceTrainer(const Dataset& dataset,
                                       GnnModel& model,
                                       Optimizer& optimizer,
                                       MultiDeviceConfig config)
    : dataset_(dataset), model_(model), optimizer_(optimizer),
      config_(std::move(config))
{
    BETTY_ASSERT(config_.numDevices >= 1, "need at least one device");
}

MultiDeviceStats
MultiDeviceTrainer::trainMicroBatches(
    const std::vector<MultiLayerBatch>& micro_batches)
{
    MultiDeviceStats stats;
    const int32_t devices = config_.numDevices;
    stats.batchesPerDevice.assign(size_t(devices), 0);
    stats.deviceSeconds.assign(size_t(devices), 0.0);

    int64_t total_outputs = 0;
    for (const auto& batch : micro_batches)
        total_outputs += int64_t(batch.outputNodes().size());
    BETTY_ASSERT(total_outputs > 0, "no output nodes to train on");

    // Schedule by input-node volume: the dominant per-batch cost for
    // both memory and time.
    std::vector<int64_t> costs;
    costs.reserve(micro_batches.size());
    for (const auto& batch : micro_batches)
        costs.push_back(int64_t(batch.inputNodes().size()) *
                            dataset_.featureDim() +
                        batch.totalEdges());
    const auto assignment = scheduleLpt(costs, devices);

    // Parameter gradients outlive the per-device memory models below;
    // allocate them under the CALLER's observer (where the parameters
    // themselves live) so no storage ever reports to a dead model.
    for (const auto& p : model_.parameters())
        p->ensureGrad();
    optimizer_.zeroGrad();
    int64_t correct = 0;

    // Devices would run concurrently; we execute serially per device
    // and take the max busy time, which is exact for the simulated
    // clock (no shared resources between simulated devices). Each
    // device's spans land in its own trace lane so the serialized
    // execution still renders as parallel swimlanes in the viewer.
    for (int32_t device_id = 0; device_id < devices; ++device_id) {
        obs::TraceLaneScope lane(
            1000 + device_id,
            "device" + std::to_string(device_id));
        BETTY_TRACE_SPAN("multi/device");
        DeviceMemoryModel device(config_.deviceCapacityBytes);
        TransferModel link(config_.hostLinkBandwidth);
        double busy = 0.0;

        for (size_t i = 0; i < micro_batches.size(); ++i) {
            if (assignment[i] != device_id)
                continue;
            const auto& batch = micro_batches[i];
            const int64_t outputs =
                int64_t(batch.outputNodes().size());
            if (outputs == 0)
                continue;
            BETTY_TRACE_SPAN("train/micro_batch");
            ++stats.batchesPerDevice[size_t(device_id)];

            DeviceMemoryModel::Scope scope(device);
            const int64_t structure_bytes = batch.structureBytes();
            const int64_t label_bytes =
                outputs * int64_t(sizeof(int32_t));
            device.onAlloc(structure_bytes,
                           obs::MemCategory::Blocks);
            device.onAlloc(label_bytes, obs::MemCategory::Labels);
            {
                // Gather features (host -> this device's link).
                const auto& inputs = batch.inputNodes();
                const int64_t dim = dataset_.featureDim();
                ag::NodePtr feature_node;
                {
                    BETTY_TRACE_SPAN_CAT("train/transfer", "transfer");
                    obs::MemCategoryScope mem_scope(
                        obs::MemCategory::InputFeatures);
                    Tensor features(int64_t(inputs.size()), dim);
                    for (size_t r = 0; r < inputs.size(); ++r)
                        std::copy_n(dataset_.features.data() +
                                        inputs[r] * dim,
                                    dim,
                                    features.data() +
                                        int64_t(r) * dim);
                    link.transfer(features.bytes() +
                                  structure_bytes);
                    feature_node = ag::constant(std::move(features));
                }

                std::vector<int32_t> labels;
                labels.reserve(size_t(outputs));
                for (int64_t v : batch.outputNodes())
                    labels.push_back(dataset_.labels[size_t(v)]);

                Timer timer;
                ag::NodePtr logits;
                {
                    BETTY_TRACE_SPAN_CAT("train/forward", "compute");
                    obs::MemCategoryScope mem_scope(
                        obs::MemCategory::Hidden);
                    logits = model_.forward(batch, feature_node);
                }
                correct += ag::countCorrect(logits->value, labels);
                const auto loss = ag::softmaxCrossEntropy(
                    logits, std::move(labels));
                const float weight = float(double(outputs) /
                                           double(total_outputs));
                {
                    BETTY_TRACE_SPAN_CAT("train/backward", "compute");
                    obs::MemCategoryScope mem_scope(
                        obs::MemCategory::Gradients);
                    ag::backward(ag::scale(loss, weight));
                }
                busy += timer.seconds();
                stats.loss +=
                    double(loss->value.at(0, 0)) * double(weight);
            }
            device.onFree(structure_bytes,
                          obs::MemCategory::Blocks);
            device.onFree(label_bytes, obs::MemCategory::Labels);
        }

        busy += link.seconds();
        stats.deviceSeconds[size_t(device_id)] = busy;
        stats.maxDevicePeakBytes =
            std::max(stats.maxDevicePeakBytes, device.peakBytes());
        stats.oom = stats.oom || device.oomOccurred();
    }

    // Ring allreduce over the gradients, then one optimizer step.
    if (devices > 1) {
        int64_t grad_bytes = 0;
        for (const auto& p : model_.parameters())
            grad_bytes += p->value.bytes();
        stats.allreduceSeconds =
            config_.collectiveLatency +
            2.0 * double(devices - 1) / double(devices) *
                double(grad_bytes) / config_.interconnectBandwidth;
    }
    {
        BETTY_TRACE_SPAN_CAT("train/step", "compute");
        Timer timer;
        optimizer_.step();
        stats.allreduceSeconds += timer.seconds();
    }
    if (obs::Metrics::enabled()) {
        static obs::Gauge& allreduce_us =
            obs::Metrics::gauge("multi.allreduce_microseconds");
        allreduce_us.set(
            int64_t(stats.allreduceSeconds * 1e6));
    }

    stats.epochSeconds =
        *std::max_element(stats.deviceSeconds.begin(),
                          stats.deviceSeconds.end()) +
        stats.allreduceSeconds;
    stats.accuracy = double(correct) / double(total_outputs);
    return stats;
}

} // namespace betty
