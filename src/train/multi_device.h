/**
 * @file
 * Multi-accelerator micro-batch training — the paper's stated future
 * work ("we plan to extend Betty to multi-GPU training to speed up
 * the training process", §7), built on the same simulated-device
 * substrate as the single-device trainer.
 *
 * Model: D devices, each with its own DeviceMemoryModel and host link.
 * The K micro-batches of a batch are scheduled across devices; every
 * device computes gradients for its share against the same parameter
 * snapshot; gradients are then combined with a ring-allreduce whose
 * cost is charged analytically (2 (D-1)/D * bytes / bandwidth). The
 * accumulated gradient is identical to single-device Betty (and to
 * full-batch training), so convergence is untouched — only wall-clock
 * and per-device peak memory change.
 *
 * Scheduling is longest-processing-time-first over the per-micro-batch
 * cost estimates, which keeps both compute and memory balanced across
 * devices even when the memory-aware planner produced uneven
 * micro-batches.
 */
#ifndef BETTY_TRAIN_MULTI_DEVICE_H
#define BETTY_TRAIN_MULTI_DEVICE_H

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "memory/device_memory.h"
#include "memory/estimator.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "sampling/block.h"

namespace betty {

/** Configuration of the simulated multi-accelerator setup. */
struct MultiDeviceConfig
{
    /** Number of accelerators. */
    int32_t numDevices = 1;

    /** Per-device memory capacity (0 = unlimited, track only). */
    int64_t deviceCapacityBytes = 0;

    /** Host->device link bandwidth per device, bytes/s. */
    double hostLinkBandwidth = 12.0e9;

    /** Device<->device interconnect bandwidth (allreduce), bytes/s. */
    double interconnectBandwidth = 50.0e9;

    /** Per-collective latency, seconds. */
    double collectiveLatency = 20.0e-6;
};

/** Per-epoch measurements of a multi-device step. */
struct MultiDeviceStats
{
    /** Output-weighted mean training loss (same as single device). */
    double loss = 0.0;

    /** Training accuracy over the epoch's output nodes. */
    double accuracy = 0.0;

    /**
     * Simulated parallel epoch time: max over devices of (compute +
     * feature transfer) plus the allreduce. Per-device compute is the
     * measured single-thread wall time of that device's micro-batches
     * (devices would run concurrently on real hardware).
     */
    double epochSeconds = 0.0;

    /** The allreduce portion of epochSeconds. */
    double allreduceSeconds = 0.0;

    /** Largest per-device peak memory, bytes. */
    int64_t maxDevicePeakBytes = 0;

    /** True if any device exceeded its capacity. */
    bool oom = false;

    /** Micro-batch count assigned to each device. */
    std::vector<int32_t> batchesPerDevice;

    /** Per-device busy time (compute + transfer), seconds. */
    std::vector<double> deviceSeconds;
};

/**
 * Assign micro-batches to devices, longest-processing-time-first by
 * the given per-batch costs. Returns assignment[i] = device of batch i.
 */
std::vector<int32_t> scheduleLpt(const std::vector<int64_t>& costs,
                                 int32_t num_devices);

/** Drives one model replica set over multiple simulated devices. */
class MultiDeviceTrainer
{
  public:
    /**
     * @param dataset Host-resident data (must outlive the trainer).
     * @param model Shared model (data-parallel replicas hold identical
     * weights; we keep one copy and serialize device execution, which
     * is numerically identical).
     * @param optimizer Stepped once per batch after the allreduce.
     */
    MultiDeviceTrainer(const Dataset& dataset, GnnModel& model,
                       Optimizer& optimizer, MultiDeviceConfig config);

    /**
     * One gradient-accumulation step over @p micro_batches spread
     * across the configured devices.
     */
    MultiDeviceStats trainMicroBatches(
        const std::vector<MultiLayerBatch>& micro_batches);

    const MultiDeviceConfig& config() const { return config_; }

  private:
    const Dataset& dataset_;
    GnnModel& model_;
    Optimizer& optimizer_;
    MultiDeviceConfig config_;
};

} // namespace betty

#endif // BETTY_TRAIN_MULTI_DEVICE_H
