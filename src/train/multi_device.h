/**
 * @file
 * Multi-accelerator split-parallel micro-batch training — the paper's
 * stated future work ("we plan to extend Betty to multi-GPU training
 * to speed up the training process", §7), built on the same
 * simulated-device substrate as the single-device trainer.
 *
 * Model: D simulated devices, each with its own DeviceMemoryModel,
 * host link (TransferModel), and optional FeatureCache. The K REG
 * micro-batches of a batch are sharded across devices by a vertex-cut
 * assignment (shardVertexCut): greedy balanced placement that
 * co-locates micro-batches sharing input (halo) vertices, minimizing
 * the cross-device duplication factor the `multi.*` metrics report.
 * Every device computes gradients for its share against the same
 * parameter snapshot; gradients are then combined with a ring
 * all-reduce priced by memory/interconnect.h before one optimizer
 * step.
 *
 * Equivalence guarantee (tests/test_multi_device_equivalence.cc): the
 * engine computes every micro-batch on the calling thread, in the
 * canonical micro-batch order, through the SAME numeric path as
 * Trainer::trainMicroBatches (it borrows Trainer::forwardStaged via a
 * friend hook). Device assignment decides only where the simulated
 * bytes and seconds are charged — never the float operation order —
 * so losses and parameters are bit-identical to single-device
 * gradient accumulation for any device count, thread count, pipeline
 * mode, and cache size. Pool lanes carry only the host-side feature
 * gathers (plain staging buffers, unobserved by the device models),
 * one lane per device in the Chrome trace.
 *
 * Fault semantics (docs/MULTI_DEVICE.md): a `device-drop@epochN[.mbM]`
 * fault (util/fault.h) kills one device; its remaining micro-batches
 * are re-sharded over the survivors and the epoch continues. Because
 * assignment never touches numerics, the run finishes with parameters
 * bit-identical to running on the surviving devices from the start —
 * the multi-device mirror of PR 4's capacity-drop invariant.
 *
 * Gray failures: a `device-slow=FACTOR@epochN[:device=D][:duration=E]`
 * fault degrades one device's host link (TransferModel::setSlowdown)
 * and the shared ring (InterconnectModel::setSlowdown — a ring is
 * bounded by its slowest lane). The engine does NOT use its
 * ground-truth knowledge of the victim to react; instead a straggler
 * supervisor keeps a per-device EWMA of *simulated* per-micro-batch
 * link seconds (deterministic — wall-clock compute is excluded) and,
 * when one device's EWMA exceeds stragglerFactor x the fastest
 * healthy device's, re-shards the straggler's PENDING micro-batches
 * toward healthy devices. Graceful degradation, not a drop: the
 * device keeps the batches it already ran, stays in the ring, and
 * heals on schedule. Numerics are bit-identical by construction —
 * assignment only moves simulated charges.
 */
#ifndef BETTY_TRAIN_MULTI_DEVICE_H
#define BETTY_TRAIN_MULTI_DEVICE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/feature_cache.h"
#include "data/dataset.h"
#include "memory/device_memory.h"
#include "memory/interconnect.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "sampling/block.h"
#include "train/trainer.h"

namespace betty {

/** Configuration of the simulated multi-accelerator setup. */
struct MultiDeviceConfig
{
    /** Number of accelerators. */
    int32_t numDevices = 1;

    /** Per-device memory capacity (0 = unlimited, track only). */
    int64_t deviceCapacityBytes = 0;

    /** Host->device link bandwidth per device, bytes/s. */
    double hostLinkBandwidth = 12.0e9;

    /** Device<->device fabric for the gradient all-reduce. */
    InterconnectConfig interconnect = InterconnectConfig::nvlink();

    /** Per-device feature-cache reservation (0 = no cache). */
    int64_t cacheBytesPerDevice = 0;

    /** Replacement policy of the per-device caches. */
    CachePolicy cachePolicy = CachePolicy::Lru;

    /**
     * Balance slack of the vertex-cut sharder: a device may hold up
     * to slack * (total cost / devices) before the sharder stops
     * preferring it for overlap.
     */
    double balanceSlack = 1.2;

    /**
     * Dispatch the host-side feature gathers to pool lanes (one per
     * device) when the global ThreadPool has workers. Off = gather
     * inline at consumption time. Either way numerics and all
     * per-device accounting are bit-identical: gathers stage into
     * plain host memory and every charge happens at consumption time
     * on the calling thread, in canonical micro-batch order.
     */
    bool pipeline = true;

    /**
     * Straggler supervisor: a device is flagged when its EWMA of
     * simulated per-micro-batch link seconds exceeds this factor
     * times the fastest healthy device's EWMA. The default tolerates
     * the sharder's balance slack plus cache variance while catching
     * any device-slow factor >= ~2. Set <= 0 to disable the
     * supervisor (the no-re-shard baseline the acceptance test
     * compares against).
     */
    double stragglerFactor = 2.0;

    /** EWMA smoothing for the straggler detector (0 < alpha <= 1;
     * 1 = judge on the latest sample alone). */
    double stragglerEwmaAlpha = 0.5;

    /** Samples a device needs before it can be flagged or serve as
     * the healthy reference. */
    int32_t minStragglerSamples = 1;
};

/**
 * Vertex-cut assignment of micro-batches to devices.
 *
 * REG already minimized input-node duplication BETWEEN micro-batches
 * (paper §4.3); across devices the residual duplication is the halo:
 * every input vertex needed by micro-batches on two devices is
 * gathered and transferred twice. shardVertexCut packs micro-batches
 * that share inputs onto the same device, subject to a load-balance
 * cap.
 */
struct ShardPlan
{
    /** Per-micro-batch device slot in [0, numDevices), or -1 for
     * micro-batches with no output nodes (never scheduled). */
    std::vector<int32_t> assignment;

    /** Per-device assigned cost (feature + structure bytes). */
    std::vector<int64_t> deviceCostBytes;

    /** Per-device count of distinct input vertices. */
    std::vector<int64_t> deviceUniqueInputs;

    /** Distinct input vertices across all assigned micro-batches. */
    int64_t globalUniqueInputs = 0;

    /**
     * Sum over devices of unique inputs divided by the global unique
     * count: 1.0 = no vertex is replicated across devices; D = every
     * vertex lives on every device.
     */
    double duplicationFactor = 1.0;
};

/**
 * Greedy balanced vertex-cut sharding (LPT order, overlap-first).
 * Deterministic: a pure function of the batches and arguments, never
 * of the thread count. Micro-batches with no output nodes get
 * assignment -1. Load-balance bound (tests/test_multi_device.cc):
 * every device's assigned cost is at most
 * max(balance_slack * total / devices, total / devices + max single
 * cost).
 */
ShardPlan shardVertexCut(const std::vector<MultiLayerBatch>& micros,
                         int32_t num_devices, int64_t feature_dim,
                         double balance_slack = 1.2);

/**
 * Duplication factor of an arbitrary assignment (same definition as
 * ShardPlan::duplicationFactor; entries < 0 are ignored). The
 * baseline comparator for the greedy sharder: pass the round-robin
 * assignment to get the naive split's factor.
 */
double shardDuplicationFactor(
    const std::vector<MultiLayerBatch>& micros,
    const std::vector<int32_t>& assignment);

/** Naive baseline: active micro-batch i -> device i % num_devices
 * (-1 for empty micro-batches). */
std::vector<int32_t> roundRobinAssignment(
    const std::vector<MultiLayerBatch>& micros, int32_t num_devices);

/** Per-epoch measurements of a multi-device step. */
struct MultiDeviceStats
{
    /** Output-weighted mean training loss (bit-identical to the
     * single-device trainer). */
    double loss = 0.0;

    /** Training accuracy over the epoch's output nodes. */
    double accuracy = 0.0;

    /**
     * Simulated parallel epoch time: max over live devices of
     * (compute + feature transfer) plus the all-reduce and optimizer
     * step. Per-device compute is the measured single-thread wall
     * time of that device's micro-batches (devices would run
     * concurrently on real hardware).
     */
    double epochSeconds = 0.0;

    /** All-reduce + optimizer-step portion of epochSeconds. */
    double allreduceSeconds = 0.0;

    /** Largest per-device peak memory, bytes. */
    int64_t maxDevicePeakBytes = 0;

    /** True if any device exceeded its capacity. */
    bool oom = false;

    /** Micro-batch count executed on each device. */
    std::vector<int32_t> batchesPerDevice;

    /** Per-device busy time (compute + transfer), seconds. */
    std::vector<double> deviceSeconds;

    /** Per-device compute portion of deviceSeconds. */
    std::vector<double> deviceComputeSeconds;

    /** Per-device simulated host-link transfer time, seconds. */
    std::vector<double> deviceTransferSeconds;

    /** Per-device bytes moved over the host link. */
    std::vector<int64_t> deviceTransferBytes;

    /** Per-device peak bytes this step. */
    std::vector<int64_t> devicePeakBytes;

    /** Cross-device input-vertex duplication of the executed
     * assignment (after any re-shard). */
    double duplicationFactor = 1.0;

    /** Devices still alive after this step. */
    int32_t liveDevices = 0;

    /** device-drop faults consumed during this step. */
    int64_t deviceDrops = 0;

    /** device-slow faults consumed during this step. */
    int64_t deviceSlowFaults = 0;

    /** Live devices still degraded (slowed) after this step. */
    int32_t degradedDevices = 0;

    /** Straggler-supervisor detections during this step. */
    int64_t stragglersDetected = 0;

    /** Pending micro-batches the supervisor moved off stragglers. */
    int64_t stragglerResharded = 0;

    /** Aggregate per-device feature-cache counters. */
    int64_t cacheHits = 0;
    int64_t cacheMisses = 0;
    int64_t cacheSavedBytes = 0;

    /** Total first-layer input nodes processed (Table 6 metric). */
    int64_t inputNodesProcessed = 0;

    /** Total nodes across all blocks of all batches. */
    int64_t totalNodesProcessed = 0;
};

/**
 * Assign micro-batches to devices, longest-processing-time-first by
 * the given per-batch costs, ignoring vertex overlap. Kept as the
 * load-only scheduler (bench tables, balance comparisons);
 * shardVertexCut is what the engine runs.
 */
std::vector<int32_t> scheduleLpt(const std::vector<int64_t>& costs,
                                 int32_t num_devices);

/** Drives one model replica set over multiple simulated devices. */
class MultiDeviceEngine
{
  public:
    /**
     * @param dataset Host-resident data (must outlive the engine).
     * @param model Shared model (data-parallel replicas hold
     * identical weights; we keep one copy and compute serially in
     * canonical order, which is bit-identical).
     * @param optimizer Stepped once per batch after the all-reduce.
     */
    MultiDeviceEngine(const Dataset& dataset, GnnModel& model,
                      Optimizer& optimizer, MultiDeviceConfig config);

    /**
     * One gradient-accumulation step over @p micro_batches spread
     * across the configured devices. Does NOT advance the fault
     * clock (use trainEpoch in fault-injected runs).
     */
    MultiDeviceStats trainMicroBatches(
        const std::vector<MultiLayerBatch>& micro_batches);

    /**
     * trainMicroBatches plus the fault protocol: advances the
     * injector clock (Injector::beginEpoch / beginMicroBatch) and
     * consumes `device-drop` events — the dropped device's pending
     * micro-batches are re-sharded over the survivors and the step
     * completes with identical numerics — plus `device-slow` events
     * (link/interconnect degradation with scheduled healing, handled
     * by the straggler supervisor) and per-attempt transfer faults on
     * the per-device links (robustness/retry.h). Other fault kinds
     * remain the single-device ResilientTrainer's domain.
     */
    MultiDeviceStats trainEpoch(
        const std::vector<MultiLayerBatch>& micro_batches,
        int64_t epoch);

    const MultiDeviceConfig& config() const { return config_; }

    /** Devices not yet lost to a device-drop fault. */
    int32_t liveDevices() const;

    /** The vertex-cut plan of the most recent step (before any
     * mid-step re-shard). */
    const ShardPlan& lastShardPlan() const { return last_plan_; }

    /** The interconnect's cumulative collective accounting. */
    const InterconnectModel& interconnect() const
    {
        return interconnect_;
    }

  private:
    /** One simulated accelerator: memory model, host link, cache.
     * The cache member is declared last so its destructor releases
     * the reservation into a still-live memory model. */
    struct DeviceState
    {
        DeviceState(int64_t capacity_bytes, double link_bandwidth)
            : memory(capacity_bytes), link(link_bandwidth)
        {
        }

        DeviceMemoryModel memory;
        TransferModel link;
        std::unique_ptr<FeatureCache> cache;
        bool dead = false;

        /** Ground truth of a consumed device-slow fault (what the
         * simulator applies); the straggler supervisor must NOT read
         * these — it detects from observed timings only. */
        bool degraded = false;
        double slowFactor = 1.0;
        /** Last epoch the slowdown covers; -1 = permanent. */
        int64_t slowUntilEpoch = -1;
    };

    /** Copy the batch's input feature rows into host staging (the
     * physical gather). Runs on a pool lane when pipelining; values
     * are identical wherever it runs, and nothing is charged here —
     * all accounting happens at consumption time. */
    Trainer::StagedFeatures gatherStaged(const MultiLayerBatch& batch,
                                         int32_t device);

    MultiDeviceStats run(
        const std::vector<MultiLayerBatch>& micro_batches,
        bool fault_clock, int64_t epoch);

    /** Indices of live devices, ascending. */
    std::vector<int32_t> liveDeviceIds() const;

    /**
     * Consume pending device-drop faults at the current clock slot:
     * mark victims dead and re-shard their not-yet-executed
     * micro-batches (positions >= @p next_pos in @p active) over the
     * survivors. Never drops the last live device.
     */
    void consumeDeviceDrops(const std::vector<MultiLayerBatch>& micros,
                            const std::vector<size_t>& active,
                            size_t next_pos,
                            std::vector<int32_t>& owner,
                            int64_t* drops);

    /**
     * Consume pending device-slow faults at the current clock slot:
     * degrade the victim's host link and the shared interconnect,
     * and schedule healing at @p epoch + duration. Picks the
     * highest-indexed live device when the spec names none.
     */
    void consumeDeviceSlow(int64_t epoch, int64_t* slow_faults);

    /** Heal devices whose slowdown expired before @p epoch. */
    void healExpiredSlowdowns(int64_t epoch);

    /** Re-price the interconnect after degradation changes: a ring
     * all-reduce is bounded by its slowest live lane. */
    void refreshInterconnectSlowdown();

    /**
     * Move @p victim's not-yet-executed micro-batches (positions >=
     * @p next_pos in @p active) onto @p targets with the same
     * overlap-first greedy as shardVertexCut, seeded with the
     * targets' current working sets. Returns how many moved.
     * Attribution only — numerics never depend on ownership.
     */
    int64_t reshardPending(const std::vector<MultiLayerBatch>& micros,
                           const std::vector<size_t>& active,
                           size_t next_pos,
                           std::vector<int32_t>& owner,
                           int32_t victim,
                           const std::vector<int32_t>& targets,
                           const char* reason);

    const Dataset& dataset_;
    GnnModel& model_;
    Optimizer& optimizer_;
    MultiDeviceConfig config_;
    /** Numeric core borrowed from the single-device trainer (no
     * device/transfer/cache attached — the engine owns accounting). */
    Trainer numerics_;
    InterconnectModel interconnect_;
    std::vector<std::unique_ptr<DeviceState>> devices_;
    ShardPlan last_plan_;
};

} // namespace betty

#endif // BETTY_TRAIN_MULTI_DEVICE_H
