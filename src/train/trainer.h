/**
 * @file
 * Training loops: full-batch, mini-batch, and Betty's micro-batch
 * (gradient accumulation) mode.
 *
 * Micro-batch semantics (paper §4.2, Figure 6): all K micro-batches
 * are forwarded/backwarded against the SAME parameters; per-micro-
 * batch losses are weighted by their share of output nodes so the
 * accumulated gradient equals the full batch's mean-loss gradient;
 * one optimizer step is applied at the end of the batch. Mini-batch
 * mode, by contrast, steps the optimizer after every batch — that is
 * the statistical difference Figures 4/13 and Table 6 measure.
 *
 * The trainer also performs the simulated heterogeneous-memory data
 * movement: per (micro-)batch it gathers the needed feature rows from
 * the host-resident dataset into a device tensor, charges the bytes to
 * the TransferModel, and accounts the block structures against the
 * DeviceMemoryModel for the duration of the step.
 */
#ifndef BETTY_TRAIN_TRAINER_H
#define BETTY_TRAIN_TRAINER_H

#include <vector>

#include "data/dataset.h"
#include "kernels/arena.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "sampling/block.h"

namespace betty {

class FeatureCache;

/** Measurements of one training epoch (or one evaluation pass). */
struct EpochStats
{
    /** Output-node-weighted mean training loss. */
    double loss = 0.0;

    /** Training accuracy over the epoch's output nodes. */
    double accuracy = 0.0;

    /** Wall-clock compute time (forward+backward+step), seconds. */
    double computeSeconds = 0.0;

    /** Simulated host->device transfer time, seconds. */
    double transferSeconds = 0.0;

    /** Device peak bytes observed during the epoch (0 if untracked). */
    int64_t peakBytes = 0;

    /** True if the device capacity was exceeded at any point. */
    bool oom = false;

    /**
     * Over-capacity EPISODES during the epoch (contiguous stretches
     * of live > capacity, from DeviceMemoryModel::oomEpisodeCount).
     * The latched `oom` bool cannot distinguish "one transient
     * overshoot" from "every micro-batch overflowed"; recovery-vs-
     * failure runs need the count.
     */
    int64_t oomEvents = 0;

    /** Total first-layer input nodes processed (Table 6 metric). */
    int64_t inputNodesProcessed = 0;

    /** Total nodes across all blocks of all batches (Fig 15 metric). */
    int64_t totalNodesProcessed = 0;

    /**
     * True if the accumulation step was aborted by the arbiter before
     * the optimizer step: gradients were rolled back (zeroGrad) and
     * the parameters are EXACTLY as before the call — the caller can
     * re-plan and retry deterministically.
     */
    bool aborted = false;

    /** Index (into the micro-batch vector) where the abort fired;
     * -1 when not aborted. */
    int64_t abortedMicroBatch = -1;
};

/**
 * Admission/review hook the resilient runtime installs around every
 * micro-batch of a gradient-accumulation step (robustness/
 * resilient_trainer.h). Returning false from either hook aborts the
 * step: the trainer zeroes the accumulated gradients (a complete
 * rollback — parameters and optimizer state are untouched until the
 * final step()) and returns with EpochStats::aborted set.
 */
class MicroBatchArbiter
{
  public:
    virtual ~MicroBatchArbiter() = default;

    /** Before micro-batch @p index is charged/computed. Return false
     * to abort the accumulation step. */
    virtual bool
    admit(size_t index, const MultiLayerBatch& batch)
    {
        (void)index;
        (void)batch;
        return true;
    }

    /** After micro-batch @p index completed (device frees done).
     * Return false to abort the accumulation step. */
    virtual bool
    review(size_t index, const MultiLayerBatch& batch)
    {
        (void)index;
        (void)batch;
        return true;
    }
};

/** Drives one model over batches built from one dataset. */
class Trainer
{
  public:
    /**
     * @param dataset Host-resident data (must outlive the trainer).
     * @param model The GNN; its parameters should have been allocated
     * inside the device scope if device accounting is wanted.
     * @param optimizer Optimizer over the model's parameters.
     * @param device Optional device memory model (peak/OOM tracking).
     * @param transfer Optional transfer cost model.
     */
    Trainer(const Dataset& dataset, GnnModel& model,
            Optimizer& optimizer, DeviceMemoryModel* device = nullptr,
            TransferModel* transfer = nullptr);

    /**
     * Enable/disable transfer-compute pipelining (default enabled).
     * When enabled AND the global ThreadPool has more than one lane,
     * trainMicroBatches overlaps the host-side feature gather and
     * TransferModel charge of micro-batch k+1 (on a pool worker, its
     * own lane in the Chrome trace) with the compute of micro-batch
     * k. Loss, accuracy, and all DeviceMemoryModel accounting are
     * bit-identical to the serial schedule: transfer time is a
     * commutative sum, and device allocations still happen at
     * consumption time on the training thread, in the serial order
     * (docs/PARALLELISM.md).
     */
    void setPipeline(bool on) { pipeline_ = on; }

    /**
     * Install (or with nullptr remove) the micro-batch arbiter
     * consulted by trainMicroBatches. Not owned; must outlive the
     * trainer or be removed first.
     */
    void setArbiter(MicroBatchArbiter* arbiter) { arbiter_ = arbiter; }

    /**
     * Install (or with nullptr remove) a device-resident feature
     * cache (cache/feature_cache.h). When set, gatherFeatures only
     * charges the TransferModel for input rows the cache misses; the
     * host-side gather itself is unchanged, so numerics are
     * bit-identical with or without a cache. Not owned; must outlive
     * the trainer or be removed first. Safe under pipelining: the
     * cache serializes internally, and the single-in-flight prefetch
     * keeps the access order identical to the serial schedule.
     */
    void setFeatureCache(FeatureCache* cache) { cache_ = cache; }

    /**
     * One gradient-accumulation step over @p micro_batches (Betty
     * micro-batch training; pass a single batch for full-batch
     * training). Empty micro-batches are skipped.
     */
    EpochStats trainMicroBatches(
        const std::vector<MultiLayerBatch>& micro_batches);

    /** One epoch of classic mini-batch SGD: optimizer step per batch. */
    EpochStats trainMiniBatches(
        const std::vector<MultiLayerBatch>& batches);

    /** Forward-only accuracy of the model on @p batch's outputs. */
    double evaluate(const MultiLayerBatch& batch);

  private:
    /**
     * The multi-device engine (train/multi_device.h) reuses the exact
     * numeric path — gatherFeatures' staging layout and forwardStaged
     * — so its per-device runs are bit-identical to this trainer by
     * construction, not by approximation.
     */
    friend class MultiDeviceEngine;

    /**
     * Host-side staging buffer for one batch's gathered feature rows.
     * Plain host memory on purpose: it is NOT observed by the device
     * memory model, so a prefetch running during another batch's
     * compute cannot perturb device peak accounting — the device-side
     * feature tensor is allocated at consumption time (upload), on
     * the training thread, exactly where the serial schedule puts it.
     */
    struct StagedFeatures
    {
        std::vector<float> values;
        int64_t rows = 0;
        /** Id of the "train/prefetch" span that produced this staging
         * buffer (0 when gathered inline): the source of the pipeline
         * handoff flow edge recorded at consumption time. */
        uint64_t traceSpanId = 0;
    };

    /**
     * Gather the batch's input-node feature rows into host staging
     * and charge the transfer model (the simulated PCIe copy).
     * @p micro_batch is the batch's logical (program-order) position
     * in the accumulation step, -1 outside the micro-batch loop; the
     * transfer retry protocol keys fault consumption on it so a
     * pipelined prefetch worker gathering ahead of the clock still
     * hits exactly the faults scheduled for its micro-batch.
     */
    StagedFeatures gatherFeatures(const MultiLayerBatch& batch,
                                  int64_t micro_batch);

    /** Materialize staged rows as the device-side feature tensor
     * (charged to the device under InputFeatures). */
    ag::NodePtr uploadFeatures(StagedFeatures staged);

    /** gatherFeatures + uploadFeatures (the serial path). */
    ag::NodePtr loadFeatures(const MultiLayerBatch& batch,
                             int64_t micro_batch);

    /** Labels of the batch's output nodes. */
    std::vector<int32_t> loadLabels(const MultiLayerBatch& batch) const;

    /** Bytes of the batch's block structures (charged to the device
     * for the duration of a step). */
    static int64_t blockBytes(const MultiLayerBatch& batch);

    /** Run forward+loss on one batch; returns {loss node, correct}. */
    struct ForwardResult
    {
        ag::NodePtr loss;
        int64_t correct = 0;
        int64_t outputs = 0;
    };
    ForwardResult forwardBatch(const MultiLayerBatch& batch,
                               int64_t micro_batch);

    /** forwardBatch on already-gathered features. */
    ForwardResult forwardStaged(const MultiLayerBatch& batch,
                                StagedFeatures staged);

    const Dataset& dataset_;
    GnnModel& model_;
    Optimizer& optimizer_;
    DeviceMemoryModel* device_;
    TransferModel* transfer_;
    MicroBatchArbiter* arbiter_ = nullptr;
    FeatureCache* cache_ = nullptr;
    bool pipeline_ = true;

    /**
     * Per-micro-batch scratch arena (kernels/arena.h): every forward/
     * backward temporary of one micro-batch bump-allocates here and is
     * reclaimed wholesale by reset() once the graph is released, so a
     * steady-state micro-batch performs O(1) heap allocations.
     * Parameter gradients and optimizer state are explicitly arena-
     * suspended and stay on the heap.
     */
    kernels::Arena arena_;
};

} // namespace betty

#endif // BETTY_TRAIN_TRAINER_H
