/**
 * @file
 * Fanout-bounded multi-layer neighbor sampling (GraphSAGE-style).
 *
 * Starting from a set of output (seed) nodes, build one Block per GNN
 * layer from the outside in: the seeds of the deepest block are the
 * labelled nodes, the sources of each block become the destinations of
 * the block below, and each destination keeps at most fanout in-
 * neighbors (all of them when fanout < 0, i.e. "full" sampling as used
 * for the paper's full-batch blocks).
 */
#ifndef BETTY_SAMPLING_NEIGHBOR_SAMPLER_H
#define BETTY_SAMPLING_NEIGHBOR_SAMPLER_H

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "sampling/block.h"
#include "util/rng.h"

namespace betty {

/** Multi-layer neighbor sampler over a raw graph. */
class NeighborSampler
{
  public:
    /**
     * @param graph The raw input graph (must outlive the sampler).
     * @param fanouts Per-layer in-neighbor caps, ordered from the input
     * layer (index 0) to the output layer, matching DGL. Negative
     * means "take every in-neighbor".
     * @param seed RNG seed. The k-th sample() call derives a call
     * seed from (seed, k), and each (layer, destination) pair draws
     * from its own counter-based stream
     * Rng::stream(call_seed, layer, dst). A destination's sample is a
     * pure function of (seed, call index, layer, dst) — never of the
     * order destinations are visited, of which other seeds share the
     * batch, or of the thread count — so repeated epochs draw fresh
     * neighborhoods while any `--threads` value replays the identical
     * sequence. Sampling is parallelized over destinations via the
     * global ThreadPool.
     */
    NeighborSampler(const CsrGraph& graph, std::vector<int64_t> fanouts,
                    uint64_t seed = 7);

    /** Number of GNN layers this sampler builds blocks for. */
    int64_t numLayers() const { return int64_t(fanouts_.size()); }

    /** Build the multi-level bipartite batch for @p seeds. */
    MultiLayerBatch sample(const std::vector<int64_t>& seeds);

    /** @name Checkpoint/resume support (robustness/checkpoint.h)
     * The call index is the sampler's only mutable state; saving it
     * with a checkpoint and restoring it on resume makes the resumed
     * run draw the exact neighborhoods the uninterrupted run would
     * have (sample k is a pure function of (seed, call index)). */
    /** @{ */
    uint64_t callIndex() const { return call_index_; }
    void setCallIndex(uint64_t index) { call_index_ = index; }
    /** @} */

  private:
    const CsrGraph& graph_;
    std::vector<int64_t> fanouts_;
    uint64_t seed_;
    /** Calls made so far; the only state carried between calls. */
    uint64_t call_index_ = 0;
};

} // namespace betty

#endif // BETTY_SAMPLING_NEIGHBOR_SAMPLER_H
