#include "sampling/neighbor_sampler.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace betty {

namespace {

/** Destinations per parallelFor chunk (fixed; see thread_pool.h). */
constexpr int64_t kSampleGrain = 256;

/** Domain tag separating the per-call seed derivation from the
 * per-(layer, dst) stream keys ("call" in ASCII). */
constexpr uint64_t kCallStreamTag = 0x63616c6cULL;

} // namespace

NeighborSampler::NeighborSampler(const CsrGraph& graph,
                                 std::vector<int64_t> fanouts,
                                 uint64_t seed)
    : graph_(graph), fanouts_(std::move(fanouts)), seed_(seed)
{
    BETTY_ASSERT(!fanouts_.empty(), "at least one layer required");
}

MultiLayerBatch
NeighborSampler::sample(const std::vector<int64_t>& seeds)
{
    BETTY_ASSERT(!seeds.empty(), "cannot sample an empty seed set");
    BETTY_TRACE_SPAN_CAT("sample/neighbor", "sample");

    MultiLayerBatch batch;
    batch.blocks.resize(size_t(fanouts_.size()));

    // Each call advances the counter so repeated epochs over the same
    // seeds draw FRESH neighborhoods (the stochasticity neighbor
    // sampling relies on) instead of replaying one fixed subgraph.
    // The call seed is derived once, on this thread, before any
    // parallel work: the k-th call is a pure function of (seed_, k),
    // deterministic for any thread count.
    const uint64_t call_seed =
        Rng::streamKey(seed_, kCallStreamTag, call_index_++);

    // Outside in: the output layer uses the last fanout.
    std::vector<int64_t> layer_seeds = seeds;
    for (int64_t layer = int64_t(fanouts_.size()) - 1; layer >= 0;
         --layer) {
        const int64_t fanout = fanouts_[size_t(layer)];
        // Each destination samples from its own counter-based stream
        // keyed on (call_seed, layer, dst): slot i's content depends
        // only on layer_seeds[i], so the parallel loop is
        // deterministic for any thread count and chunk schedule.
        std::vector<std::vector<int64_t>> src_per_dst(
            layer_seeds.size());
        ThreadPool::global().parallelFor(
            0, int64_t(layer_seeds.size()), kSampleGrain,
            [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                    const int64_t dst = layer_seeds[size_t(i)];
                    const auto nbrs = graph_.inNeighbors(dst);
                    std::vector<int64_t>& chosen =
                        src_per_dst[size_t(i)];
                    if (fanout < 0 ||
                        int64_t(nbrs.size()) <= fanout) {
                        chosen.assign(nbrs.begin(), nbrs.end());
                    } else {
                        Rng rng = Rng::stream(call_seed,
                                              uint64_t(layer),
                                              uint64_t(dst));
                        const auto picks =
                            rng.sampleWithoutReplacement(
                                int64_t(nbrs.size()), fanout);
                        chosen.reserve(size_t(fanout));
                        for (int64_t p : picks)
                            chosen.push_back(nbrs[size_t(p)]);
                    }
                }
            });
        batch.blocks[size_t(layer)] =
            Block(std::move(layer_seeds), src_per_dst);
        layer_seeds = batch.blocks[size_t(layer)].srcNodes();
    }
    if (obs::Metrics::enabled()) {
        static obs::Counter& batches =
            obs::Metrics::counter("sampler.batches");
        static obs::Counter& fanout_nodes =
            obs::Metrics::counter("sampler.fanout_nodes");
        static obs::Counter& edges =
            obs::Metrics::counter("sampler.edges");
        batches.increment();
        // "Fanout nodes": first-layer inputs — the feature rows this
        // batch will force onto the device (Table 6's metric).
        fanout_nodes.add(int64_t(batch.inputNodes().size()));
        edges.add(batch.totalEdges());
    }
    return batch;
}

} // namespace betty
