/**
 * @file
 * Bipartite layer graphs ("blocks") — the unit Betty partitions.
 *
 * A Block is the DGL block equivalent: one level of the multi-level
 * bipartite structure of a GNN batch (paper §4.2.2, Figure 7).
 * Destination nodes are the centers whose representations the layer
 * computes; source nodes are the (sampled) in-neighbors whose features
 * feed the aggregation. Following the DGL convention, the destination
 * nodes appear as the prefix of the source list so a node's own
 * previous-layer representation is always available (GraphSAGE
 * concatenates it with the neighbor aggregate).
 *
 * A MultiLayerBatch stacks L blocks: blocks[0] touches the raw input
 * features, blocks[L-1] produces the output (labelled) nodes.
 */
#ifndef BETTY_SAMPLING_BLOCK_H
#define BETTY_SAMPLING_BLOCK_H

#include <cstdint>
#include <span>
#include <vector>

namespace betty {

/** One bipartite layer of a batch, with local CSR over in-edges. */
class Block
{
  public:
    Block() = default;

    /**
     * Build from destination nodes and their per-destination source
     * lists (all in raw-graph global IDs). The source index is
     * constructed so destinations occupy local slots [0, numDst).
     */
    Block(std::vector<int64_t> dst_nodes,
          const std::vector<std::vector<int64_t>>& src_per_dst);

    int64_t numDst() const { return num_dst_; }
    int64_t numSrc() const { return int64_t(src_nodes_.size()); }
    int64_t numEdges() const { return int64_t(edge_src_local_.size()); }

    /** Global (raw-graph) IDs of all source nodes; dsts are the prefix. */
    const std::vector<int64_t>& srcNodes() const { return src_nodes_; }

    /** Global IDs of the destination nodes (== first numDst srcNodes). */
    std::span<const int64_t> dstNodes() const
    {
        return {src_nodes_.data(), size_t(num_dst_)};
    }

    /** Local source indices of the in-edges of local destination @p i. */
    std::span<const int64_t> inEdges(int64_t i) const;

    /** All edges' local source indices, grouped by destination (CSR
     * payload; use edgeOffsets() for the per-destination bounds). */
    const std::vector<int64_t>& edgeSources() const
    {
        return edge_src_local_;
    }

    /** Per-destination CSR offsets into edgeSources(), size numDst+1. */
    const std::vector<int64_t>& edgeOffsets() const
    {
        return edge_offsets_;
    }

    /** In-degree of local destination @p i. */
    int64_t inDegree(int64_t i) const
    {
        return int64_t(inEdges(i).size());
    }

    /**
     * Destination local indices grouped by in-degree, DGL-style
     * bucketing (paper §4.4.2): result[d] holds the dsts with exact
     * degree d for d < max_bucket; result[max_bucket] holds the long
     * tail (degree >= max_bucket).
     */
    std::vector<std::vector<int64_t>> degreeBuckets(
        int64_t max_bucket) const;

  private:
    int64_t num_dst_ = 0;
    std::vector<int64_t> src_nodes_;
    std::vector<int64_t> edge_offsets_;   // per-dst CSR, size numDst + 1
    std::vector<int64_t> edge_src_local_; // local src index per edge
};

/** A complete GNN batch: L stacked bipartite blocks. */
struct MultiLayerBatch
{
    /** blocks[0] reads raw features; blocks.back() emits outputs. */
    std::vector<Block> blocks;

    int64_t numLayers() const { return int64_t(blocks.size()); }

    /** Raw-graph IDs whose features must be loaded (first-layer srcs). */
    const std::vector<int64_t>&
    inputNodes() const
    {
        return blocks.front().srcNodes();
    }

    /** Raw-graph IDs of the labelled output nodes. */
    std::span<const int64_t>
    outputNodes() const
    {
        return blocks.back().dstNodes();
    }

    /** Total edges across all blocks (drives block-size memory cost). */
    int64_t
    totalEdges() const
    {
        int64_t total = 0;
        for (const auto& b : blocks)
            total += b.numEdges();
        return total;
    }

    /**
     * Device bytes of the batch's block structure (Table 3 item (4)):
     * per edge, source + destination node IDs plus one float of edge
     * payload. The trainers charge exactly this when a batch lands on
     * a device; the estimator prices item (4) with the same formula.
     */
    int64_t
    structureBytes() const
    {
        const int64_t per_edge = 2 * 8 + 4; // two int64 IDs + one float
        return totalEdges() * per_edge;
    }
};

} // namespace betty

#endif // BETTY_SAMPLING_BLOCK_H
