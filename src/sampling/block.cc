#include "sampling/block.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace betty {

Block::Block(std::vector<int64_t> dst_nodes,
             const std::vector<std::vector<int64_t>>& src_per_dst)
    : num_dst_(int64_t(dst_nodes.size()))
{
    BETTY_ASSERT(dst_nodes.size() == src_per_dst.size(),
                 "one source list per destination required");

    // Local index assignment: destinations first (DGL's
    // include_dst_in_src), then every new source in first-seen order.
    src_nodes_ = std::move(dst_nodes);
    std::unordered_map<int64_t, int64_t> local;
    local.reserve(src_nodes_.size() * 2);
    for (int64_t i = 0; i < num_dst_; ++i) {
        const auto [it, inserted] =
            local.emplace(src_nodes_[size_t(i)], i);
        (void)it;
        BETTY_ASSERT(inserted, "duplicate destination node ",
                     src_nodes_[size_t(i)]);
    }

    edge_offsets_.reserve(size_t(num_dst_) + 1);
    edge_offsets_.push_back(0);
    for (const auto& sources : src_per_dst) {
        for (int64_t global : sources) {
            auto [it, inserted] =
                local.emplace(global, int64_t(src_nodes_.size()));
            if (inserted)
                src_nodes_.push_back(global);
            edge_src_local_.push_back(it->second);
        }
        edge_offsets_.push_back(int64_t(edge_src_local_.size()));
    }
}

std::span<const int64_t>
Block::inEdges(int64_t i) const
{
    BETTY_ASSERT(i >= 0 && i < num_dst_, "destination index out of range");
    const auto begin = size_t(edge_offsets_[size_t(i)]);
    const auto end = size_t(edge_offsets_[size_t(i) + 1]);
    return {edge_src_local_.data() + begin, end - begin};
}

std::vector<std::vector<int64_t>>
Block::degreeBuckets(int64_t max_bucket) const
{
    BETTY_ASSERT(max_bucket >= 1, "need at least one bucket");
    std::vector<std::vector<int64_t>> buckets(size_t(max_bucket) + 1);
    for (int64_t i = 0; i < num_dst_; ++i)
        buckets[size_t(std::min(inDegree(i), max_bucket))].push_back(i);
    return buckets;
}

} // namespace betty
