/**
 * @file
 * Unified performance-telemetry driver: runs the registered bench
 * scenarios under the warmup+repeats discipline of
 * obs/perf/bench_harness.h and writes one schema-versioned
 * BENCH_report.json that `betty_report bench-diff` gates wall-clock
 * regressions against (the committed baseline lives in
 * bench/baselines/bench_seed.json).
 *
 *   betty_bench --list
 *   betty_bench [--scenario=NAME ...] [--repeats=N] [--warmup=N]
 *               [--threads=N] [--out=FILE]
 *               [--flight-recorder-out=FILE]
 *               [--trace-out=FILE] [--critpath-out=FILE]
 *               [--trace-ring=N]
 *
 * --trace-out enables span collection and writes the Chrome trace of
 * the LAST timed repeat of the last scenario run (the harness clears
 * the trace between repeats so each repeat's buffers start empty);
 * --critpath-out runs the critical-path analysis over those same
 * spans and writes CRITPATH_report.json. --trace-ring overrides the
 * per-thread ring capacity (BETTY_TRACE_RING); a run that still
 * drops events warns naming both knobs.
 *
 * Scenarios cover the pipeline stages the paper measures: neighbour
 * sampling, batch-level partitioning (REG construction), an epoch of
 * micro-batched training with and without the feature cache, and a
 * fault-injected resilient epoch that re-plans K -> K+1. Each repeat
 * rebuilds model/optimizer state so every repeat does identical
 * work; datasets and sampled batches are built once per scenario in
 * untimed setup. All numeric flags are parsed strictly
 * (util/env_config.h) — a malformed value is fatal, never silently
 * zero.
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/feature_cache.h"
#include "core/betty.h"
#include "data/catalog.h"
#include "kernels/dispatch.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "obs/critpath/critical_path.h"
#include "obs/critpath/critpath_report.h"
#include "obs/critpath/span_graph.h"
#include "obs/perf/bench_harness.h"
#include "obs/perf/flight_recorder.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "robustness/resilient_trainer.h"
#include "sampling/neighbor_sampler.h"
#include "train/multi_device.h"
#include "train/trainer.h"
#include "util/env_config.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace betty {
namespace {

/** Shared per-scenario state built in untimed setup. */
struct Workload
{
    std::unique_ptr<Dataset> dataset;
    MultiLayerBatch full;
    std::vector<MultiLayerBatch> micros;

    void
    reset()
    {
        dataset.reset();
        full = MultiLayerBatch();
        micros.clear();
    }
};

Workload g_work;

SageConfig
sageConfig(const Dataset& ds)
{
    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;
    return cfg;
}

/** Load dataset + sample one batch (the setup every scenario shares). */
void
setupBatch(const char* dataset_name, double scale, size_t num_seeds)
{
    g_work.reset();
    g_work.dataset = std::make_unique<Dataset>(
        loadCatalogDataset(dataset_name, scale, 11));
    NeighborSampler sampler(g_work.dataset->graph, {4, 6}, 12);
    const auto& train = g_work.dataset->trainNodes;
    std::vector<int64_t> seeds(
        train.begin(),
        train.begin() + std::min(train.size(), num_seeds));
    g_work.full = sampler.sample(seeds);
}

/** setupBatch + partition into K micro-batches. */
void
setupMicros(const char* dataset_name, double scale, size_t num_seeds,
            int32_t k)
{
    setupBatch(dataset_name, scale, num_seeds);
    BettyPartitioner partitioner;
    g_work.micros = extractMicroBatches(
        g_work.full, partitioner.partition(g_work.full, k));
}

/** One epoch of micro-batched training from a fresh model. */
void
runTrainEpoch(bool cached)
{
    const Dataset& ds = *g_work.dataset;
    DeviceMemoryModel device(envcfg::deviceCapacityBytes());
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(sageConfig(ds));
    Adam adam(model.parameters(), 0.01f);
    TransferModel transfer;
    Trainer trainer(ds, model, adam, &device, &transfer);
    std::unique_ptr<FeatureCache> cache;
    if (cached) {
        const int64_t row_bytes =
            ds.featureDim() * int64_t(sizeof(float));
        cache = std::make_unique<FeatureCache>(
            &device, envcfg::cacheCapacityBytes(), row_bytes);
        trainer.setFeatureCache(cache.get());
    }
    // Two epochs so the cached variant actually hits rows the first
    // epoch inserted; the uncached twin runs the same work for a fair
    // wall-clock comparison.
    for (int epoch = 0; epoch < 2; ++epoch)
        trainer.trainMicroBatches(g_work.micros);
}

/** Two multi-device epochs: micro-batches sharded over 4 simulated
 * devices by the vertex-cut assignment, gradients combined with a
 * ring all-reduce before each optimizer step. Numerics identical to
 * runTrainEpoch; only placement and simulated accounting differ. */
void
runTrainEpochMultiDevice()
{
    const Dataset& ds = *g_work.dataset;
    GraphSage model(sageConfig(ds));
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    config.deviceCapacityBytes = envcfg::deviceCapacityBytes();
    MultiDeviceEngine engine(ds, model, adam, config);
    for (int epoch = 0; epoch < 2; ++epoch)
        engine.trainMicroBatches(g_work.micros);
}

/** A fault-injected resilient epoch: injected OOM forces K -> K+1. */
void
runResilientRecovery()
{
    const Dataset& ds = *g_work.dataset;
    fault::FaultPlan plan;
    std::string error;
    if (!fault::FaultPlan::parse("oom@epoch1.mb0", plan, &error))
        fatal("bench fault spec rejected: ", error);
    fault::Injector::install(std::move(plan));

    DeviceMemoryModel device(envcfg::deviceCapacityBytes());
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(sageConfig(ds));
    Adam adam(model.parameters(), 0.01f);
    TransferModel transfer;
    Trainer trainer(ds, model, adam, &device, &transfer);
    trainer.setPipeline(false);
    BettyPartitioner partitioner;
    ResilientTrainer resilient(trainer, model.memorySpec(),
                               partitioner, &device);
    resilient.trainEpoch(g_work.full, 1, 1);
    fault::Injector::clear();
}

std::vector<obs::BenchScenario>
registeredScenarios()
{
    std::vector<obs::BenchScenario> scenarios;

    scenarios.push_back(
        {"sample", "multi-layer neighbour sampling, cora_like",
         [] { setupBatch("cora_like", 0.5, 256); },
         [] {
             NeighborSampler sampler(g_work.dataset->graph, {4, 6},
                                     12);
             const auto& train = g_work.dataset->trainNodes;
             std::vector<int64_t> seeds(
                 train.begin(),
                 train.begin() +
                     std::min<size_t>(train.size(), 256));
             sampler.sample(seeds);
         },
         [] { g_work.reset(); }});

    scenarios.push_back(
        {"partition",
         "betty batch-level partitioning (REG) at K=8, cora_like",
         [] { setupBatch("cora_like", 0.5, 256); },
         [] {
             BettyPartitioner partitioner;
             partitioner.partition(g_work.full, 8);
         },
         [] { g_work.reset(); }});

    scenarios.push_back(
        {"train_epoch",
         "2 epochs of micro-batched SAGE training, K=4, cora_like",
         [] { setupMicros("cora_like", 0.5, 256, 4); },
         [] { runTrainEpoch(false); }, [] { g_work.reset(); }});

    scenarios.push_back(
        {"train_epoch_simd",
         "same epochs on the AVX2 kernel backend (BETTY_KERNELS="
         "auto; falls back to scalar off-AVX2, docs/KERNELS.md)",
         [] {
             setupMicros("cora_like", 0.5, 256, 4);
             kernels::setKernelMode(kernels::KernelMode::Auto);
         },
         [] { runTrainEpoch(false); },
         [] {
             kernels::setKernelMode(kernels::KernelMode::Scalar);
             g_work.reset();
         }});

    scenarios.push_back(
        {"train_epoch_cached",
         "same epochs with the device feature cache installed",
         [] { setupMicros("cora_like", 0.5, 256, 4); },
         [] { runTrainEpoch(true); }, [] { g_work.reset(); }});

    scenarios.push_back(
        {"train_epoch_multi_device",
         "same epochs sharded over 4 simulated devices (vertex-cut "
         "+ ring all-reduce), K=8",
         [] { setupMicros("cora_like", 0.5, 256, 8); },
         [] { runTrainEpochMultiDevice(); }, [] { g_work.reset(); }});

    scenarios.push_back(
        {"resilient_recovery",
         "fault-injected epoch: injected OOM, re-plan K=1 -> K=2",
         [] { setupBatch("cora_like", 0.5, 128); },
         [] { runResilientRecovery(); }, [] { g_work.reset(); }});

    return scenarios;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: betty_bench [--list] [--scenario=NAME ...]\n"
        "                   [--repeats=N] [--warmup=N] [--threads=N]\n"
        "                   [--out=FILE] "
        "[--flight-recorder-out=FILE]\n"
        "                   [--trace-out=FILE] [--critpath-out=FILE]"
        " [--trace-ring=N]\n");
    return 2;
}

} // namespace
} // namespace betty

int
main(int argc, char** argv)
{
    using namespace betty;

    obs::BenchConfig config;
    config.repeats = 3;
    config.warmup = 1;
    std::vector<std::string> wanted;
    std::string out_path = "BENCH_report.json";
    std::string flight_out;
    std::string trace_out;
    std::string critpath_out;
    std::string trace_ring_flag;
    bool list_only = false;
    int32_t threads = 0;

    auto intValue = [](const char* flag, const char* text) {
        int64_t parsed = 0;
        if (!envcfg::parseInt(text, &parsed) || parsed < 0)
            fatal("malformed ", flag, "='", text,
                  "': expected an integer >= 0");
        return parsed;
    };

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--list") == 0)
            list_only = true;
        else if (std::strncmp(arg, "--scenario=", 11) == 0)
            wanted.emplace_back(arg + 11);
        else if (std::strncmp(arg, "--repeats=", 10) == 0)
            config.repeats =
                int32_t(intValue("--repeats", arg + 10));
        else if (std::strncmp(arg, "--warmup=", 9) == 0)
            config.warmup = int32_t(intValue("--warmup", arg + 9));
        else if (std::strncmp(arg, "--threads=", 10) == 0)
            threads = int32_t(intValue("--threads", arg + 10));
        else if (std::strncmp(arg, "--out=", 6) == 0)
            out_path = arg + 6;
        else if (std::strncmp(arg, "--flight-recorder-out=", 22) == 0)
            flight_out = arg + 22;
        else if (std::strncmp(arg, "--trace-out=", 12) == 0)
            trace_out = arg + 12;
        else if (std::strncmp(arg, "--critpath-out=", 15) == 0)
            critpath_out = arg + 15;
        else if (std::strncmp(arg, "--trace-ring=", 13) == 0)
            trace_ring_flag = arg + 13;
        else
            return usage();
    }
    if (config.repeats < 1)
        fatal("--repeats must be >= 1 (got ", config.repeats, ")");

    const auto scenarios = registeredScenarios();
    if (list_only) {
        for (const auto& s : scenarios)
            std::printf("%-20s %s\n", s.name.c_str(),
                        s.description.c_str());
        return 0;
    }

    if (threads > 0)
        ThreadPool::setGlobalThreads(threads);
    if (!flight_out.empty())
        obs::FlightRecorder::setFatalDumpPath(flight_out);
    const int64_t trace_ring =
        envcfg::resolveInt(trace_ring_flag, "--trace-ring",
                           "BETTY_TRACE_RING", 1 << 16);
    if (trace_ring < 1)
        fatal("--trace-ring must be at least 1");
    obs::Trace::setRingCapacity(size_t(trace_ring));
    if (!trace_out.empty() || !critpath_out.empty()) {
        obs::Trace::setEnabled(true);
        obs::Trace::nameCurrentLane("main");
    }

    obs::BenchRunner runner(config);
    runner.setConfigNote("threads",
                         std::to_string(ThreadPool::globalThreads()));
    runner.setConfigNote("bench_scale",
                         std::to_string(envcfg::benchScale()));

    for (const auto& scenario : scenarios) {
        if (!wanted.empty()) {
            bool hit = false;
            for (const auto& name : wanted)
                hit = hit || name == scenario.name;
            if (!hit)
                continue;
        }
        std::printf("betty_bench: %s (%d warmup + %d repeats)\n",
                    scenario.name.c_str(), config.warmup,
                    config.repeats);
        std::fflush(stdout);
        runner.run(scenario);
    }
    if (runner.scenarioCount() == 0)
        fatal("no scenario matched; try --list");

    if (!runner.writeJson(out_path))
        fatal("cannot write '", out_path, "'");
    std::printf("betty_bench: wrote %s (%lld scenario(s))\n",
                out_path.c_str(), (long long)runner.scenarioCount());

    if (!flight_out.empty()) {
        if (obs::FlightRecorder::writeJson(flight_out))
            std::printf("betty_bench: wrote %s\n",
                        flight_out.c_str());
        else
            warn("could not write flight recording '", flight_out,
                 "'");
    }

    // The harness clears the trace between repeats, so what is left
    // in the buffers here is the last timed repeat of the last
    // scenario — one clean, representative recording.
    if (!trace_out.empty()) {
        if (obs::Trace::writeChromeTrace(trace_out))
            std::printf("betty_bench: wrote %s\n", trace_out.c_str());
        else
            warn("could not write trace '", trace_out, "'");
    }
    if (obs::Trace::enabled() && obs::Trace::droppedEvents() > 0)
        warn("trace dropped ", obs::Trace::droppedEvents(),
             " event(s) to the per-thread ring (capacity ",
             trace_ring, "); raise BETTY_TRACE_RING or "
             "--trace-ring for a lossless trace");
    if (!critpath_out.empty()) {
        namespace critpath = obs::critpath;
        critpath::SpanGraph graph = critpath::buildFromLiveTrace();
        critpath::CritpathError error;
        critpath::SegmentGraph segments;
        if (!critpath::validateSpanGraph(&graph, &error) ||
            !critpath::buildSegmentGraph(graph, &segments, &error)) {
            warn("critpath analysis failed (",
                 critpath::critpathErrorKindName(error.kind), "): ",
                 error.message);
        } else {
            const critpath::CriticalPathResult result =
                critpath::analyzeCriticalPath(graph, segments);
            if (critpath::writeCritpathReport(critpath_out, graph,
                                              result, {}))
                std::printf("betty_bench: wrote %s\n",
                            critpath_out.c_str());
            else
                warn("could not write critpath report '",
                     critpath_out, "'");
        }
    }
    return 0;
}
