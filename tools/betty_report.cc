/**
 * @file
 * Run-report inspector and perf-regression gate.
 *
 * Usage:
 *   betty_report print <report.json>
 *   betty_report check <report.json>
 *   betty_report diff <baseline.json> <candidate.json>
 *       [--max-peak-regress F]      (default 0.10: +10% peak bytes)
 *       [--max-time-regress F]      (default 0.25: +25% compute time)
 *       [--max-edge-cut-regress F]  (default 0.10: +10% edge cut)
 *       [--max-accuracy-drop F]     (default 0.05: -5 points test acc)
 *       [--inject-peak-scale F]     (test hook: scale candidate peaks)
 *   betty_report bench-diff <baseline.json> <candidate.json>
 *       [--tolerance F]             (default 0.25: +25% wall clock)
 *       [--inject-time-scale F]     (test hook: scale candidate times)
 *   betty_report critpath <trace.json>
 *       [--what-if CATEGORY=SCALE]... (virtual speedup projection)
 *       [--min-coverage F]          (gate: cp must cover >= F of wall)
 *       [--out FILE]                (write CRITPATH_report.json)
 *
 * `critpath` reconstructs the span dependency DAG from a Chrome
 * trace written by Trace::writeChromeTrace(), walks the critical
 * path, prints per-category attribution (including pipeline-stall
 * time), and optionally projects COZ-style what-if speedups
 * ("--what-if transfer=0.5" = transfers run 2x faster).
 *
 * `print` renders the report's epochs and per-category Table 3
 * breakdown as aligned tables. `check` validates the report's
 * internal consistency (schema version, category sums vs. totals,
 * residual arithmetic, and — when a recovery section is present —
 * that fault-free runs performed zero recovery actions) — the
 * acceptance contract of the memory profiler and the fault-tolerant
 * runtime. `diff` compares two reports and exits non-zero when the
 * candidate regresses past any threshold, refusing to compare
 * artifacts with mismatched schema versions. `bench-diff` is the
 * wall-clock regression gate over betty_bench's BENCH_report.json:
 * every scenario's median wall seconds may exceed the baseline's by
 * at most --tolerance (relative).
 *
 * Malformed artifacts are typed errors, never crashes or silent
 * passes: a missing summary/scenario section, a mismatched schema
 * version, a zero baseline (ratio undefined), or a non-finite
 * number each name the offending field and exit 2.
 *
 * Exit codes: 0 ok, 1 regression/violation, 2 usage/parse/artifact
 * error.
 */
#include <cmath>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath/critical_path.h"
#include "obs/critpath/critpath_report.h"
#include "obs/critpath/span_graph.h"
#include "obs/critpath/whatif.h"
#include "obs/json.h"
#include "obs/memprof.h"
#include "obs/perf/bench_harness.h"
#include "obs/run_meta.h"
#include "util/env_config.h"
#include "util/table.h"

namespace {

using betty::TablePrinter;
using betty::obs::JsonValue;
using betty::obs::kBenchSchemaVersion;
using betty::obs::kMemCategoryCount;
using betty::obs::kObsSchemaVersion;
using betty::obs::MemCategory;
using betty::obs::memCategoryName;
using betty::obs::parseJson;

constexpr double kMiB = 1024.0 * 1024.0;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: betty_report print <report.json>\n"
        "       betty_report check <report.json>\n"
        "       betty_report diff <baseline.json> <candidate.json>\n"
        "           [--max-peak-regress F] [--max-time-regress F]\n"
        "           [--max-edge-cut-regress F] "
        "[--max-accuracy-drop F]\n"
        "           [--inject-peak-scale F]\n"
        "       betty_report bench-diff <baseline.json> "
        "<candidate.json>\n"
        "           [--tolerance F] [--inject-time-scale F]\n"
        "       betty_report critpath <trace.json>\n"
        "           [--what-if CATEGORY=SCALE]... "
        "[--min-coverage F] [--out FILE]\n");
    return 2;
}

bool
loadReport(const std::string& path, JsonValue& doc)
{
    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "betty_report: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string error;
    if (!parseJson(buffer.str(), doc, &error)) {
        std::fprintf(stderr,
                     "betty_report: '%s' is not valid JSON: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    if (!doc.isObject()) {
        std::fprintf(stderr,
                     "betty_report: '%s' is not a JSON object\n",
                     path.c_str());
        return false;
    }
    return true;
}

int64_t
schemaVersion(const JsonValue& doc)
{
    const JsonValue* version = doc.find("schema_version");
    return version && version->isNumber() ? version->asInt() : 0;
}

/** summary.<key> as a double, or @p fallback when absent. */
double
summaryNumber(const JsonValue& doc, const char* key, double fallback)
{
    const JsonValue* summary = doc.find("summary");
    const JsonValue* value = summary ? summary->find(key) : nullptr;
    return value && value->isNumber() ? value->number : fallback;
}

/** Malformed-artifact count (drives the exit-2 path of diff modes). */
int artifact_errors = 0;

void
artifactError(const std::string& message)
{
    std::fprintf(stderr, "betty_report: artifact error: %s\n",
                 message.c_str());
    ++artifact_errors;
}

/**
 * summary.<key> as a finite double for the diff gate. Unlike
 * summaryNumber (whose absent-means-fallback suits printing), a gate
 * comparing a missing or non-finite number would pass silently — so
 * each such case is a typed artifact error instead.
 */
double
requiredSummaryNumber(const JsonValue& doc, const char* doc_name,
                      const char* key)
{
    const JsonValue* summary = doc.find("summary");
    if (!summary || !summary->isObject()) {
        artifactError(std::string(doc_name) +
                      ": summary section is missing");
        return 0.0;
    }
    const JsonValue* value = summary->find(key);
    if (!value || !value->isNumber()) {
        artifactError(std::string(doc_name) + ": summary." + key +
                      " is missing or not a number");
        return 0.0;
    }
    if (!std::isfinite(value->number)) {
        artifactError(std::string(doc_name) + ": summary." + key +
                      " is not finite");
        return 0.0;
    }
    return value->number;
}

// ---------------------------------------------------------------- print

int
printReport(const std::string& path, const JsonValue& doc)
{
    const JsonValue* dataset = doc.find("dataset");
    const JsonValue* dataset_name =
        dataset ? dataset->find("name") : nullptr;
    std::printf("report: %s\n", path.c_str());
    if (const JsonValue* meta = doc.find("meta")) {
        if (const JsonValue* stamp = meta->find("timestamp"))
            std::printf("recorded: %s\n", stamp->string.c_str());
    }
    if (dataset_name)
        std::printf("dataset: %s\n", dataset_name->string.c_str());

    TablePrinter epochs("epochs");
    epochs.setHeader({"epoch", "K", "loss", "acc", "test", "peak MiB",
                      "seconds", "oom"});
    if (const JsonValue* rows = doc.find("epochs")) {
        for (const JsonValue& row : rows->array) {
            auto field = [&](const char* key) -> double {
                const JsonValue* value = row.find(key);
                return value ? value->number : 0.0;
            };
            const JsonValue* oom = row.find("oom");
            epochs.addRow(
                {TablePrinter::count((long long)field("epoch")),
                 TablePrinter::count((long long)field("k")),
                 TablePrinter::num(field("loss"), 4),
                 TablePrinter::num(field("accuracy"), 3),
                 TablePrinter::num(field("test_accuracy"), 3),
                 TablePrinter::num(field("peak_bytes") / kMiB, 1),
                 TablePrinter::num(field("compute_seconds"), 2),
                 oom && oom->boolean ? "yes" : "no"});
        }
    }
    epochs.print();

    // Table 3 predicted-vs-actual, worst micro-batch per category.
    const JsonValue* profile = doc.find("memory_profile");
    const JsonValue* micro_batches =
        profile ? profile->find("micro_batches") : nullptr;
    TablePrinter breakdown(
        "memory breakdown (worst micro-batch per category)");
    breakdown.setHeader({"category", "predicted MiB", "actual MiB",
                         "residual %"});
    for (size_t c = 0; c < kMemCategoryCount; ++c) {
        const char* name = memCategoryName(MemCategory(c));
        double predicted = 0.0, actual = 0.0;
        if (micro_batches) {
            for (const JsonValue& batch : micro_batches->array) {
                const JsonValue* categories =
                    batch.find("categories");
                const JsonValue* entry =
                    categories ? categories->find(name) : nullptr;
                if (!entry)
                    continue;
                const JsonValue* a = entry->find("actual_bytes");
                if (a && a->number > actual) {
                    actual = a->number;
                    const JsonValue* p =
                        entry->find("predicted_bytes");
                    predicted = p ? p->number : 0.0;
                }
            }
        }
        const double residual_pct =
            actual > 0.0 ? (predicted - actual) / actual * 100.0
                         : 0.0;
        breakdown.addRow({name, TablePrinter::num(predicted / kMiB, 3),
                          TablePrinter::num(actual / kMiB, 3),
                          TablePrinter::num(residual_pct, 1)});
    }
    breakdown.print();

    TablePrinter summary("summary");
    summary.setHeader({"metric", "value"});
    summary.addRow(
        {"peak MiB",
         TablePrinter::num(summaryNumber(doc, "peak_bytes", 0) / kMiB,
                           1)});
    summary.addRow(
        {"compute seconds",
         TablePrinter::num(
             summaryNumber(doc, "total_compute_seconds", 0), 2)});
    summary.addRow(
        {"final test accuracy",
         TablePrinter::num(
             summaryNumber(doc, "final_test_accuracy", 0), 3)});
    summary.addRow(
        {"edge cut", TablePrinter::count((long long)summaryNumber(
                         doc, "edge_cut", 0))});
    summary.addRow(
        {"transfer MiB",
         TablePrinter::num(
             summaryNumber(doc, "transfer_bytes", 0) / kMiB, 1)});
    summary.addRow(
        {"OOM events", TablePrinter::count((long long)summaryNumber(
                           doc, "oom_events", 0))});
    summary.print();

    // Feature-cache section (always present from schema v3 on).
    if (const JsonValue* cache = doc.find("cache")) {
        auto field = [&](const char* key) -> long long {
            const JsonValue* value = cache->find(key);
            return value && value->isNumber()
                       ? (long long)value->asInt()
                       : 0;
        };
        const JsonValue* enabled = cache->find("enabled");
        const JsonValue* policy = cache->find("policy");
        TablePrinter table("cache");
        table.setHeader({"metric", "value"});
        table.addRow({"enabled",
                      enabled && enabled->boolean ? "yes" : "no"});
        table.addRow({"policy",
                      policy ? policy->string.c_str() : "?"});
        table.addRow(
            {"capacity MiB",
             TablePrinter::num(double(field("capacity_bytes")) / kMiB,
                               1)});
        table.addRow({"hits", TablePrinter::count(field("hits"))});
        table.addRow({"misses", TablePrinter::count(field("misses"))});
        table.addRow(
            {"bytes saved MiB",
             TablePrinter::num(double(field("bytes_saved")) / kMiB,
                               1)});
        table.addRow(
            {"evictions", TablePrinter::count(field("evictions"))});
        table.addRow(
            {"releases", TablePrinter::count(field("releases"))});
        table.print();
    }

    // Optional recovery section (fault-tolerant runtime runs).
    if (const JsonValue* recovery = doc.find("recovery")) {
        auto field = [&](const char* key) -> long long {
            const JsonValue* value = recovery->find(key);
            return value && value->isNumber()
                       ? (long long)value->asInt()
                       : 0;
        };
        const JsonValue* active = recovery->find("faults_active");
        TablePrinter table("recovery");
        table.setHeader({"metric", "value"});
        table.addRow({"faults active",
                      active && active->boolean ? "yes" : "no"});
        table.addRow({"faults injected",
                      TablePrinter::count(field("faults_injected"))});
        table.addRow(
            {"re-plans", TablePrinter::count(field("replans"))});
        table.addRow(
            {"OOM retries", TablePrinter::count(field("oom_retries"))});
        table.addRow({"transfer retries",
                      TablePrinter::count(field("transfer_retries"))});
        table.addRow({"batches skipped",
                      TablePrinter::count(field("batches_skipped"))});
        table.addRow({"corrupt rows repaired",
                      TablePrinter::count(
                          field("corrupt_rows_repaired"))});
        table.addRow({"retry failures",
                      TablePrinter::count(field("retry_failures"))});
        table.addRow(
            {"retry backoff ms",
             TablePrinter::num(double(field("retry_backoff_us")) / 1e3,
                               2)});
        table.addRow({"retry exhausted",
                      TablePrinter::count(field("retry_exhausted"))});
        table.print();
    }
    return 0;
}

// ---------------------------------------------------------------- check

int check_failures = 0;

void
violation(const std::string& message)
{
    std::fprintf(stderr, "betty_report: check FAIL: %s\n",
                 message.c_str());
    ++check_failures;
}

/**
 * Validate the acceptance contract: schema version matches this
 * build, every timeline sample's category bytes sum to its total,
 * and every micro-batch record carries all Table 3 categories with
 * consistent residual arithmetic.
 */
int
checkReport(const JsonValue& doc)
{
    if (schemaVersion(doc) != kObsSchemaVersion)
        violation("schema_version " +
                  std::to_string(schemaVersion(doc)) + " != expected " +
                  std::to_string(kObsSchemaVersion));

    const JsonValue* meta = doc.find("meta");
    if (!meta || !meta->find("timestamp"))
        violation("meta.timestamp is missing");

    const JsonValue* epochs = doc.find("epochs");
    if (!epochs || !epochs->isArray() || epochs->array.empty()) {
        violation("epochs is missing or empty");
    } else {
        for (const JsonValue& row : epochs->array) {
            const JsonValue* peak = row.find("peak_bytes");
            if (!peak || peak->asInt() <= 0) {
                violation("an epoch has non-positive peak_bytes");
                break;
            }
        }
    }

    const JsonValue* timeline = doc.find("timeline");
    if (!timeline || !timeline->isArray() ||
        timeline->array.empty()) {
        violation("timeline is missing or empty");
    } else {
        for (size_t i = 0; i < timeline->array.size(); ++i) {
            const JsonValue& sample = timeline->array[i];
            const JsonValue* total = sample.find("total_live_bytes");
            const JsonValue* categories = sample.find("categories");
            if (!total || !categories || !categories->isObject()) {
                violation("timeline[" + std::to_string(i) +
                          "] is malformed");
                continue;
            }
            int64_t sum = 0;
            for (const auto& [name, value] : categories->object)
                sum += value.asInt();
            if (sum != total->asInt())
                violation("timeline[" + std::to_string(i) +
                          "]: category sum " + std::to_string(sum) +
                          " != total_live_bytes " +
                          std::to_string(total->asInt()));
        }
    }

    const JsonValue* profile = doc.find("memory_profile");
    const JsonValue* micro_batches =
        profile ? profile->find("micro_batches") : nullptr;
    if (!micro_batches || !micro_batches->isArray() ||
        micro_batches->array.empty()) {
        violation("memory_profile.micro_batches is missing or empty");
    } else {
        for (size_t i = 0; i < micro_batches->array.size(); ++i) {
            const JsonValue& batch = micro_batches->array[i];
            const JsonValue* categories = batch.find("categories");
            if (!categories || !categories->isObject()) {
                violation("micro_batches[" + std::to_string(i) +
                          "] has no categories");
                continue;
            }
            for (size_t c = 0; c < kMemCategoryCount; ++c) {
                const char* name = memCategoryName(MemCategory(c));
                const JsonValue* entry = categories->find(name);
                if (!entry) {
                    violation("micro_batches[" + std::to_string(i) +
                              "] lacks category '" + name + "'");
                    continue;
                }
                const JsonValue* predicted =
                    entry->find("predicted_bytes");
                const JsonValue* actual = entry->find("actual_bytes");
                const JsonValue* residual =
                    entry->find("residual_bytes");
                if (!predicted || !actual || !residual) {
                    violation("micro_batches[" + std::to_string(i) +
                              "]." + name +
                              " lacks predicted/actual/residual");
                } else if (residual->asInt() !=
                           predicted->asInt() - actual->asInt()) {
                    violation("micro_batches[" + std::to_string(i) +
                              "]." + name +
                              ": residual != predicted - actual");
                }
            }
        }
    }

    const JsonValue* residuals = doc.find("estimator_residuals");
    const JsonValue* entries =
        residuals ? residuals->find("entries") : nullptr;
    if (!entries || !entries->isArray() || entries->array.empty())
        violation("estimator_residuals.entries is missing or empty");

    // A fault-free run must not have recovered from anything:
    // non-zero recovery counters without an installed fault plan mean
    // the runtime silently re-planned or retried — behaviour that is
    // supposed to be bit-identical to the plain trainer.
    if (const JsonValue* recovery = doc.find("recovery")) {
        const JsonValue* active = recovery->find("faults_active");
        if (!active || !active->isBool()) {
            violation("recovery.faults_active is missing");
        } else if (!active->boolean) {
            static const char* const counters[] = {
                "replans",          "oom_retries",
                "transfer_retries", "batches_skipped",
                "corrupt_rows_repaired", "faults_injected",
                "retry_failures",   "retry_backoff_us",
                "retry_exhausted"};
            for (const char* key : counters) {
                const JsonValue* value = recovery->find(key);
                if (value && value->asInt() != 0)
                    violation("recovery." + std::string(key) + " = " +
                              std::to_string(value->asInt()) +
                              " in a fault-free run");
            }
        }
        // The retry policy charges its backoff as simulated link
        // time, so the backoff can never exceed the run's total
        // transfer seconds; retry_exhausted counts a subset of the
        // retried transfers, so it is bounded by retry_failures.
        auto retryField = [&](const char* key) -> long long {
            const JsonValue* value = recovery->find(key);
            return value && value->isNumber()
                       ? (long long)value->asInt()
                       : 0;
        };
        const double transfer_s =
            summaryNumber(doc, "total_transfer_seconds", -1.0);
        if (transfer_s >= 0.0 &&
            double(retryField("retry_backoff_us")) / 1e6 >
                transfer_s + 1e-9)
            violation("recovery.retry_backoff_us exceeds the run's "
                      "total transfer seconds");
        if (retryField("retry_exhausted") >
            retryField("retry_failures"))
            violation("recovery.retry_exhausted exceeds "
                      "recovery.retry_failures");
    }

    // The cache section is mandatory from schema v3 on, and the cache
    // contract mirrors the recovery one: a run configured WITHOUT a
    // cache must not have moved, saved, or evicted anything — cache
    // counters in an uncached run mean the trainer consulted a cache
    // the user never asked for.
    const JsonValue* cache = doc.find("cache");
    if (!cache || !cache->isObject()) {
        violation("cache section is missing");
    } else {
        const JsonValue* enabled = cache->find("enabled");
        const JsonValue* policy = cache->find("policy");
        if (!enabled || !enabled->isBool())
            violation("cache.enabled is missing");
        if (!policy || !policy->isString())
            violation("cache.policy is missing");
        static const char* const counters[] = {
            "capacity_bytes", "reserved_bytes", "hits",
            "misses",         "bytes_saved",    "evictions",
            "releases",       "released_bytes"};
        for (const char* key : counters) {
            const JsonValue* value = cache->find(key);
            if (!value || !value->isNumber()) {
                violation("cache." + std::string(key) + " is missing");
                continue;
            }
            if (value->asInt() < 0)
                violation("cache." + std::string(key) +
                          " is negative");
            if (enabled && enabled->isBool() && !enabled->boolean &&
                value->asInt() != 0)
                violation("cache." + std::string(key) + " = " +
                          std::to_string(value->asInt()) +
                          " in a run with the cache disabled");
        }
        const JsonValue* capacity = cache->find("capacity_bytes");
        const JsonValue* reserved = cache->find("reserved_bytes");
        if (capacity && reserved &&
            reserved->asInt() > capacity->asInt())
            violation("cache.reserved_bytes exceeds "
                      "cache.capacity_bytes");
        const JsonValue* hits = cache->find("hits");
        const JsonValue* saved = cache->find("bytes_saved");
        if (hits && saved && hits->asInt() == 0 && saved->asInt() != 0)
            violation("cache.bytes_saved is non-zero with zero hits");
    }

    if (check_failures) {
        std::fprintf(stderr, "betty_report: %d check failure(s)\n",
                     check_failures);
        return 1;
    }
    std::printf("betty_report: check OK\n");
    return 0;
}

// ----------------------------------------------------------------- diff

struct DiffThresholds
{
    double maxPeakRegress = 0.10;
    double maxTimeRegress = 0.25;
    double maxEdgeCutRegress = 0.10;
    double maxAccuracyDrop = 0.05;
    /** Test hook: scale the candidate's peak figures before
     * comparing, to simulate a memory regression. */
    double injectPeakScale = 1.0;
};

int diff_regressions = 0;

void
regression(const char* metric, double baseline, double candidate,
           const std::string& detail)
{
    std::fprintf(stderr,
                 "REGRESSION: %s baseline %.6g candidate %.6g (%s)\n",
                 metric, baseline, candidate, detail.c_str());
    ++diff_regressions;
}

/** Flag a regression when candidate exceeds baseline by more than
 * @p max_ratio (relative); zero/absent baselines are skipped. */
void
compareIncrease(const char* metric, double baseline, double candidate,
                double max_ratio)
{
    if (baseline <= 0.0)
        return;
    const double ratio = (candidate - baseline) / baseline;
    if (ratio > max_ratio)
        regression(metric, baseline, candidate,
                   "+" + std::to_string(ratio * 100.0) +
                       "% > allowed +" +
                       std::to_string(max_ratio * 100.0) + "%");
}

int
diffReports(const JsonValue& baseline, const JsonValue& candidate,
            const DiffThresholds& thresholds)
{
    if (schemaVersion(baseline) != schemaVersion(candidate)) {
        std::fprintf(stderr,
                     "betty_report: refusing to diff schema_version "
                     "%lld against %lld\n",
                     (long long)schemaVersion(baseline),
                     (long long)schemaVersion(candidate));
        return 2;
    }

    const double base_peak =
        requiredSummaryNumber(baseline, "baseline", "peak_bytes");
    const double cand_peak =
        requiredSummaryNumber(candidate, "candidate", "peak_bytes") *
        thresholds.injectPeakScale;
    compareIncrease("peak_bytes", base_peak, cand_peak,
                    thresholds.maxPeakRegress);

    compareIncrease(
        "total_compute_seconds",
        requiredSummaryNumber(baseline, "baseline",
                              "total_compute_seconds"),
        requiredSummaryNumber(candidate, "candidate",
                              "total_compute_seconds"),
        thresholds.maxTimeRegress);

    compareIncrease(
        "edge_cut",
        requiredSummaryNumber(baseline, "baseline", "edge_cut"),
        requiredSummaryNumber(candidate, "candidate", "edge_cut"),
        thresholds.maxEdgeCutRegress);

    const double base_acc = requiredSummaryNumber(
        baseline, "baseline", "final_test_accuracy");
    const double cand_acc = requiredSummaryNumber(
        candidate, "candidate", "final_test_accuracy");
    if (base_acc - cand_acc > thresholds.maxAccuracyDrop)
        regression("final_test_accuracy", base_acc, cand_acc,
                   "dropped " + std::to_string(base_acc - cand_acc) +
                       " > allowed " +
                       std::to_string(thresholds.maxAccuracyDrop));

    const double base_oom =
        requiredSummaryNumber(baseline, "baseline", "oom_events");
    const double cand_oom =
        requiredSummaryNumber(candidate, "candidate", "oom_events");
    if (cand_oom > base_oom)
        regression("oom_events", base_oom, cand_oom,
                   "more OOM episodes than baseline");

    if (artifact_errors) {
        std::fprintf(stderr, "betty_report: %d artifact error(s)\n",
                     artifact_errors);
        return 2;
    }
    if (diff_regressions) {
        std::fprintf(stderr, "betty_report: %d regression(s)\n",
                     diff_regressions);
        return 1;
    }
    std::printf("betty_report: diff OK (no regressions)\n");
    return 0;
}

// ----------------------------------------------------------- bench-diff

int64_t
benchSchemaVersion(const JsonValue& doc)
{
    const JsonValue* version = doc.find("bench_schema_version");
    return version && version->isNumber() ? version->asInt() : 0;
}

/** scenarios.<name>.wall_seconds.median as a finite double; flips
 * @p ok (with a typed artifact error) when absent or non-finite. */
double
scenarioMedian(const JsonValue& entry, const char* doc_name,
               const std::string& name, bool* ok)
{
    const JsonValue* wall = entry.find("wall_seconds");
    if (!wall || !wall->isObject()) {
        artifactError(std::string(doc_name) + ": scenario '" + name +
                      "' has no wall_seconds section");
        *ok = false;
        return 0.0;
    }
    const JsonValue* median = wall->find("median");
    if (!median || !median->isNumber()) {
        artifactError(std::string(doc_name) + ": scenario '" + name +
                      "' wall_seconds.median is missing");
        *ok = false;
        return 0.0;
    }
    if (!std::isfinite(median->number)) {
        artifactError(std::string(doc_name) + ": scenario '" + name +
                      "' wall_seconds.median is not finite");
        *ok = false;
        return 0.0;
    }
    return median->number;
}

/**
 * The wall-clock regression gate over two BENCH_report.json files:
 * every baseline scenario must exist in the candidate and its median
 * wall seconds may grow by at most @p tolerance (relative).
 */
int
benchDiff(const JsonValue& baseline, const JsonValue& candidate,
          double tolerance, double inject_time_scale)
{
    const int64_t base_version = benchSchemaVersion(baseline);
    const int64_t cand_version = benchSchemaVersion(candidate);
    if (base_version == 0 || cand_version == 0) {
        artifactError("bench_schema_version is missing — not a "
                      "BENCH_report.json?");
        return 2;
    }
    if (base_version != cand_version ||
        base_version != kBenchSchemaVersion) {
        std::fprintf(stderr,
                     "betty_report: refusing to bench-diff "
                     "bench_schema_version %lld against %lld "
                     "(this build understands %lld)\n",
                     (long long)base_version, (long long)cand_version,
                     (long long)kBenchSchemaVersion);
        return 2;
    }

    const JsonValue* base_scenarios = baseline.find("scenarios");
    const JsonValue* cand_scenarios = candidate.find("scenarios");
    if (!base_scenarios || !base_scenarios->isObject() ||
        base_scenarios->object.empty()) {
        artifactError("baseline: scenarios section is missing or "
                      "empty");
        return 2;
    }
    if (!cand_scenarios || !cand_scenarios->isObject()) {
        artifactError("candidate: scenarios section is missing");
        return 2;
    }

    size_t compared = 0;
    for (const auto& [name, base_entry] : base_scenarios->object) {
        const JsonValue* cand_entry = cand_scenarios->find(name);
        if (!cand_entry) {
            artifactError("candidate: scenario '" + name +
                          "' is missing");
            continue;
        }
        bool ok = true;
        const double base_median =
            scenarioMedian(base_entry, "baseline", name, &ok);
        double cand_median =
            scenarioMedian(*cand_entry, "candidate", name, &ok);
        if (!ok)
            continue;
        if (base_median <= 0.0) {
            artifactError("baseline: scenario '" + name +
                          "' median wall seconds is " +
                          std::to_string(base_median) +
                          " — regression ratio is undefined");
            continue;
        }
        cand_median *= inject_time_scale;
        ++compared;
        const double ratio =
            (cand_median - base_median) / base_median;
        if (ratio > tolerance)
            regression(("bench." + name + ".wall_seconds").c_str(),
                       base_median, cand_median,
                       "+" + std::to_string(ratio * 100.0) +
                           "% > allowed +" +
                           std::to_string(tolerance * 100.0) + "%");
        else
            std::printf("bench-diff: %-24s %.6g s -> %.6g s "
                        "(%+.1f%%, allowed +%.0f%%)\n",
                        name.c_str(), base_median, cand_median,
                        ratio * 100.0, tolerance * 100.0);
    }

    if (artifact_errors) {
        std::fprintf(stderr, "betty_report: %d artifact error(s)\n",
                     artifact_errors);
        return 2;
    }
    if (diff_regressions) {
        std::fprintf(stderr, "betty_report: %d regression(s)\n",
                     diff_regressions);
        return 1;
    }
    std::printf("betty_report: bench-diff OK (%zu scenario(s) "
                "within +%.0f%%)\n",
                compared, tolerance * 100.0);
    return 0;
}

// ------------------------------------------------------------- critpath

namespace critpath = betty::obs::critpath;

/**
 * Report a typed artifact error from the critpath pipeline and
 * return the exit-2 convention of the other diff modes.
 */
int
critpathArtifactError(const critpath::CritpathError& error)
{
    std::fprintf(stderr,
                 "betty_report: artifact error: %s: %s\n",
                 critpath::critpathErrorKindName(error.kind),
                 error.message.c_str());
    return 2;
}

/** Parse "category=scale" (scale a whole-string finite double). */
bool
parseWhatIfSpec(const std::string& text, critpath::WhatIfSpec* spec)
{
    const size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    double scale = 0.0;
    if (!betty::envcfg::parseDouble(text.substr(eq + 1), &scale) ||
        scale < 0.0)
        return false;
    spec->category = text.substr(0, eq);
    spec->scale = scale;
    return true;
}

int
critpathCommand(const std::string& trace_path,
                const std::vector<critpath::WhatIfSpec>& specs,
                double min_coverage, const std::string& out_path)
{
    JsonValue doc;
    if (!loadReport(trace_path, doc))
        return 2;

    critpath::SpanGraph graph;
    critpath::CritpathError error;
    if (!critpath::buildFromTraceJson(doc, &graph, &error))
        return critpathArtifactError(error);
    if (!critpath::validateSpanGraph(&graph, &error))
        return critpathArtifactError(error);
    critpath::SegmentGraph segments;
    if (!critpath::buildSegmentGraph(graph, &segments, &error))
        return critpathArtifactError(error);

    const critpath::CriticalPathResult result =
        critpath::analyzeCriticalPath(graph, segments);

    std::vector<critpath::WhatIfResult> what_ifs;
    for (const critpath::WhatIfSpec& spec : specs)
        what_ifs.push_back(
            critpath::projectWhatIf(graph, segments, spec));

    TablePrinter summary("critical path");
    summary.setHeader({"metric", "value"});
    summary.addRow({"wall ms",
                    TablePrinter::num(double(result.wallUs) / 1000.0,
                                      3)});
    summary.addRow({"critical path ms",
                    TablePrinter::num(double(result.cpUs) / 1000.0,
                                      3)});
    summary.addRow({"coverage",
                    TablePrinter::num(result.coverage, 4)});
    summary.addRow({"path steps",
                    TablePrinter::count(
                        (long long)result.steps.size())});
    summary.addRow({"spans",
                    TablePrinter::count(
                        (long long)graph.spans.size())});
    summary.addRow({"flow edges",
                    TablePrinter::count(
                        (long long)graph.flows.size())});
    summary.addRow({"dropped events",
                    TablePrinter::count(
                        (long long)graph.droppedEvents)});
    summary.addRow({"pruned flows",
                    TablePrinter::count(
                        (long long)graph.prunedFlows)});
    summary.print();

    TablePrinter attribution("on-path attribution");
    attribution.setHeader({"category", "ms", "share %"});
    for (const critpath::CategoryShare& share : result.categories)
        attribution.addRow(
            {share.category,
             TablePrinter::num(double(share.us) / 1000.0, 3),
             TablePrinter::num(share.share * 100.0, 1)});
    attribution.print();

    if (!what_ifs.empty()) {
        TablePrinter projections("what-if projections");
        projections.setHeader({"category", "scale", "baseline ms",
                               "projected ms", "speedup %"});
        for (const critpath::WhatIfResult& what_if : what_ifs)
            projections.addRow(
                {what_if.spec.category,
                 TablePrinter::num(what_if.spec.scale, 2),
                 TablePrinter::num(what_if.baselineModelUs / 1000.0,
                                   3),
                 TablePrinter::num(what_if.projectedUs / 1000.0, 3),
                 TablePrinter::num(what_if.projectedSpeedupPct, 1)});
        projections.print();
    }

    if (!out_path.empty()) {
        if (!critpath::writeCritpathReport(out_path, graph, result,
                                           what_ifs)) {
            std::fprintf(stderr,
                         "betty_report: cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
        std::printf("critpath report written to %s\n",
                    out_path.c_str());
    }

    // The consistency gate: a critical path that is longer than the
    // trace, misses its own longest step, or leaks attribution means
    // the DAG construction is wrong — fail like a regression, not an
    // artifact error, because the input parsed fine.
    std::vector<std::string> violations;
    if (!critpath::validateCriticalPath(result, &violations)) {
        for (const std::string& line : violations)
            std::fprintf(stderr, "betty_report: critpath FAIL: %s\n",
                         line.c_str());
        return 1;
    }
    if (result.coverage < min_coverage) {
        std::fprintf(stderr,
                     "betty_report: critpath FAIL: coverage %.4f < "
                     "required %.4f — the DAG is missing dependency "
                     "edges across that much of the wall time\n",
                     result.coverage, min_coverage);
        return 1;
    }
    std::printf("betty_report: critpath OK (coverage %.4f)\n",
                result.coverage);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3)
        return usage();
    const std::string command = argv[1];

    if (command == "print" || command == "check") {
        JsonValue doc;
        if (!loadReport(argv[2], doc))
            return 2;
        return command == "print" ? printReport(argv[2], doc)
                                  : checkReport(doc);
    }

    if (command == "diff") {
        if (argc < 4)
            return usage();
        DiffThresholds thresholds;
        for (int i = 4; i < argc; ++i) {
            const std::string flag = argv[i];
            auto value = [&]() -> double {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "betty_report: missing value for "
                                 "%s\n",
                                 flag.c_str());
                    std::exit(2);
                }
                return std::atof(argv[++i]);
            };
            if (flag == "--max-peak-regress")
                thresholds.maxPeakRegress = value();
            else if (flag == "--max-time-regress")
                thresholds.maxTimeRegress = value();
            else if (flag == "--max-edge-cut-regress")
                thresholds.maxEdgeCutRegress = value();
            else if (flag == "--max-accuracy-drop")
                thresholds.maxAccuracyDrop = value();
            else if (flag == "--inject-peak-scale")
                thresholds.injectPeakScale = value();
            else
                return usage();
        }
        JsonValue baseline, candidate;
        if (!loadReport(argv[2], baseline) ||
            !loadReport(argv[3], candidate))
            return 2;
        return diffReports(baseline, candidate, thresholds);
    }

    if (command == "bench-diff") {
        if (argc < 4)
            return usage();
        double tolerance = 0.25;
        double inject_time_scale = 1.0;
        for (int i = 4; i < argc; ++i) {
            const std::string flag = argv[i];
            auto value = [&]() -> double {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "betty_report: missing value for "
                                 "%s\n",
                                 flag.c_str());
                    std::exit(2);
                }
                return std::atof(argv[++i]);
            };
            if (flag == "--tolerance")
                tolerance = value();
            else if (flag == "--inject-time-scale")
                inject_time_scale = value();
            else
                return usage();
        }
        JsonValue baseline, candidate;
        if (!loadReport(argv[2], baseline) ||
            !loadReport(argv[3], candidate))
            return 2;
        return benchDiff(baseline, candidate, tolerance,
                         inject_time_scale);
    }

    if (command == "critpath") {
        std::vector<betty::obs::critpath::WhatIfSpec> specs;
        double min_coverage = 0.0;
        std::string out_path;
        for (int i = 3; i < argc; ++i) {
            const std::string flag = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "betty_report: missing value for "
                                 "%s\n",
                                 flag.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            if (flag == "--what-if") {
                betty::obs::critpath::WhatIfSpec spec;
                const std::string text = value();
                if (!parseWhatIfSpec(text, &spec)) {
                    std::fprintf(
                        stderr,
                        "betty_report: --what-if expects "
                        "CATEGORY=SCALE with a finite scale >= 0, "
                        "got '%s'\n",
                        text.c_str());
                    return 2;
                }
                specs.push_back(spec);
            } else if (flag == "--min-coverage") {
                if (!betty::envcfg::parseDouble(value(),
                                                &min_coverage))
                    return usage();
            } else if (flag == "--out") {
                out_path = value();
            } else {
                return usage();
            }
        }
        return critpathCommand(argv[2], specs, min_coverage,
                               out_path);
    }

    return usage();
}
