/**
 * @file
 * Scenario: a complete command-line training application on the
 * public API — what a downstream user would actually run.
 *
 * Usage:
 *   train_cli [--dataset NAME] [--scale F] [--model sage|gat]
 *               [--aggregator mean|sum|pool|lstm] [--layers N]
 *               [--hidden N] [--fanout a,b,...] [--epochs N]
 *               [--lr F] [--budget-mib N] [--devices N]
 *               [--interconnect nvlink|pcie]
 *               [--partitioner betty|metis|random|range] [--warm]
 *               [--threads N] [--kernels scalar|avx2|auto]
 *               [--no-pipeline]
 *               [--cache-gib F] [--cache-policy lru|lru-pinned]
 *               [--data-cache FILE] [--trace-out=FILE]
 *               [--critpath-out=FILE] [--trace-ring N]
 *               [--metrics-out=FILE] [--memprof-out=FILE]
 *               [--faults SPEC] [--fault-seed N]
 *               [--checkpoint-out FILE] [--checkpoint-every N]
 *               [--resume FILE] [--recover-on-oom]
 *               [--flight-recorder-out FILE]
 *
 * --flight-recorder-out FILE dumps the always-on flight recorder
 * (obs/perf/flight_recorder.h) — the last N structured events: epoch
 * markers, injected faults, every recovery decision, cache
 * evictions, checkpoints — as JSON at the end of the run, and
 * registers FILE as the automatic post-mortem destination so a
 * fatal() mid-run still leaves the event trail behind.
 *
 * Numeric flags are parsed strictly (util/env_config.h): partial or
 * non-numeric values are startup errors, not silent zeros.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): single-device training runs
 * under the ResilientTrainer — if the device capacity shrinks
 * mid-epoch (or a fault is injected via --faults / the BETTY_FAULTS
 * variable, grammar in util/fault.h), the epoch's gradients are
 * rolled back, the batch is re-planned at K+1, and training retries;
 * when recovery is exhausted the epoch is skipped with a report
 * instead of crashing. --recover-on-oom additionally re-plans on
 * real (non-injected) over-capacity episodes. --checkpoint-out
 * writes a resumable checkpoint every --checkpoint-every epochs
 * (and after the last); --resume restores one and continues
 * bit-identically to an uninterrupted run.
 *
 * --cache-gib F reserves F GiB of the device as a feature cache
 * (docs/CACHING.md): input rows already resident are not re-charged
 * to the transfer model, so duplicated/hot nodes cross the simulated
 * PCIe link once instead of once per micro-batch. Numerics are
 * bit-identical with and without the cache; only transfer
 * bytes/seconds change. --cache-policy picks pure LRU or LRU with a
 * pinned hot set of top-out-degree nodes. The reservation is real:
 * the planner and the OOM recovery loop treat it as unavailable to
 * training tensors, and recovery releases it before skipping work.
 *
 * --threads N sizes the global ThreadPool used by batch preparation
 * (parallel REG construction, parallel neighbor sampling) and by the
 * trainer's transfer-compute pipelining. Every result is bit-
 * identical for any N (docs/PARALLELISM.md); N=1 (the default, or
 * BETTY_THREADS) is fully serial. --no-pipeline disables the
 * transfer-compute overlap without changing the pool size.
 *
 * --kernels scalar|avx2|auto (or BETTY_KERNELS) picks the compute
 * backend for the aggregation/GEMM hot paths (docs/KERNELS.md):
 * "scalar" is the bit-exact reference and the default, "avx2" the
 * vectorized path (falls back to scalar with one warning if the CPU
 * or build lacks AVX2+FMA), "auto" vectorizes when available.
 * Sum/max aggregation and all elementwise updates are bit-identical
 * across backends; GEMM and mean aggregation agree within the
 * documented ULP bounds.
 *
 * Every epoch resamples the full batch, (re)partitions it under the
 * memory budget, trains with gradient accumulation and prints loss /
 * accuracy / memory / time. With --devices > 1 (or BETTY_DEVICES) the
 * MultiDeviceEngine shards the micro-batches across N simulated
 * accelerators by a vertex-cut assignment (docs/MULTI_DEVICE.md);
 * losses and parameters stay bit-identical to the single-device run,
 * only the simulated time/memory/transfer attribution changes.
 * --interconnect picks the all-reduce fabric preset, and a
 * `device-drop@epochN` fault re-shards the victim's pending work over
 * the survivors mid-epoch. The end-of-run per-epoch stats are
 * rendered with the shared TablePrinter formatter.
 *
 * --trace-out=FILE enables span collection and writes a Chrome
 * trace_event JSON (open in chrome://tracing or ui.perfetto.dev);
 * --critpath-out=FILE additionally (or instead) runs the critical-
 * path analysis (obs/critpath/) over the recorded spans at the end
 * of the run and writes CRITPATH_report.json — per-category
 * attribution of the epoch critical path, the same artifact
 * `betty_report critpath <trace>` produces offline. --trace-ring N
 * overrides the per-thread trace ring capacity (BETTY_TRACE_RING);
 * if the run still drops events, a warning names both knobs.
 * --metrics-out=FILE enables the metric registry and writes its JSON
 * snapshot, including per-micro-batch estimator residuals.
 * --memprof-out=FILE enables metrics and writes a structured run
 * report: dataset/config echo, per-epoch stats, the per-micro-batch
 * Table 3 category breakdown with estimator residuals, and the
 * sampled per-category memory timeline (betty_report prints/diffs
 * it). With all flags absent the collectors stay disabled (one
 * branch per site).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cache/feature_cache.h"
#include "core/betty.h"
#include "data/catalog.h"
#include "data/io.h"
#include "kernels/dispatch.h"
#include "memory/transfer_model.h"
#include "obs/critpath/critical_path.h"
#include "obs/critpath/critpath_report.h"
#include "obs/critpath/span_graph.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "robustness/checkpoint.h"
#include "robustness/resilient_trainer.h"
#include "sampling/neighbor_sampler.h"
#include "obs/perf/flight_recorder.h"
#include "train/multi_device.h"
#include "train/trainer.h"
#include "util/env_config.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace betty;

struct Args
{
    std::string dataset = "arxiv_like";
    double scale = 0.2;
    std::string model = "sage";
    std::string aggregator = "mean";
    int64_t layers = 2;
    int64_t hidden = 32;
    std::vector<int64_t> fanouts = {5, 10};
    int epochs = 10;
    float lr = 0.01f;
    double budget_mib = 16.0;
    /** Simulated accelerators (flag > BETTY_DEVICES > 1; resolved in
     * parseArgs). */
    int32_t devices = 1;
    /** All-reduce fabric preset for --devices > 1 (memory/
     * interconnect.h vocabulary). */
    std::string interconnect = "nvlink";
    std::string partitioner = "betty";
    bool warm = false;
    /** Global ThreadPool lanes (0 = leave default/BETTY_THREADS). */
    int32_t threads = 0;
    /** Compute-kernel backend (flag > BETTY_KERNELS > "scalar";
     * vocabulary in kernels/dispatch.h, docs/KERNELS.md). */
    std::string kernels;
    /** Disable transfer-compute pipelining in the trainer. */
    bool no_pipeline = false;
    /** Feature-cache reservation in GiB (0 = no cache). The cache
     * stays opt-in here: BETTY_CACHE_GIB scales the bench sweeps,
     * not a user's training run. */
    double cache_gib = 0.0;
    /** Feature-cache replacement policy (flag > BETTY_CACHE_POLICY
     * > "lru"; resolved in parseArgs). */
    std::string cache_policy;
    /** Cache file for the generated dataset (gen_data.sh analog):
     * loaded if it exists, otherwise written after generation. */
    std::string data_cache;
    /** Chrome trace JSON destination ("" = tracing disabled). */
    std::string trace_out;
    /** CRITPATH_report.json destination ("" = no analysis; enables
     * tracing like --trace-out does). */
    std::string critpath_out;
    /** Per-thread trace ring capacity override (raw flag text; "" =
     * BETTY_TRACE_RING or the built-in default). */
    std::string trace_ring;
    /** Metrics JSON destination ("" = metrics disabled). */
    std::string metrics_out;
    /** Run-report JSON destination ("" = no report; enables metrics). */
    std::string memprof_out;
    /** Fault-injection spec (util/fault.h grammar; "" = BETTY_FAULTS
     * or no faults). */
    std::string faults;
    /** Seed for the fault plan's stochastic choices. */
    uint64_t fault_seed = 0;
    /** Checkpoint destination ("" = no checkpoints). */
    std::string checkpoint_out;
    /** Write a checkpoint every N completed epochs. */
    int checkpoint_every = 1;
    /** Checkpoint to restore before training ("" = fresh start). */
    std::string resume;
    /** Re-plan on real over-capacity episodes, not just faults. */
    bool recover_on_oom = false;
    /** Flight-recorder dump destination ("" = no dump file; the
     * ring still records either way). */
    std::string flight_recorder_out;
};

int64_t
intFlag(const std::string& flag, const char* text)
{
    int64_t value = 0;
    if (!envcfg::parseInt(text, &value))
        fatal("malformed ", flag, "='", text,
              "': expected an integer");
    return value;
}

double
doubleFlag(const std::string& flag, const char* text)
{
    double value = 0.0;
    if (!envcfg::parseDouble(text, &value))
        fatal("malformed ", flag, "='", text,
              "': expected a finite number");
    return value;
}

std::vector<int64_t>
parseFanouts(const char* arg)
{
    std::vector<int64_t> fanouts;
    const char* cursor = arg;
    while (*cursor) {
        fanouts.push_back(std::strtol(cursor, nullptr, 10));
        cursor = std::strchr(cursor, ',');
        if (!cursor)
            break;
        ++cursor;
    }
    return fanouts;
}

Args
parseArgs(int argc, char** argv)
{
    Args args;
    std::string devices_text; // raw --devices value; resolved below
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline_value = false;
        if (const size_t eq = flag.find('=');
            eq != std::string::npos) {
            inline_value = flag.substr(eq + 1);
            flag = flag.substr(0, eq);
            has_inline_value = true;
        }
        auto next = [&]() -> const char* {
            if (has_inline_value)
                return inline_value.c_str();
            if (i + 1 >= argc)
                fatal("missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--dataset") {
            args.dataset = next();
        } else if (flag == "--scale") {
            args.scale = doubleFlag(flag, next());
        } else if (flag == "--model") {
            args.model = next();
        } else if (flag == "--aggregator") {
            args.aggregator = next();
        } else if (flag == "--layers") {
            args.layers = intFlag(flag, next());
        } else if (flag == "--hidden") {
            args.hidden = intFlag(flag, next());
        } else if (flag == "--fanout") {
            args.fanouts = parseFanouts(next());
        } else if (flag == "--epochs") {
            args.epochs = int(intFlag(flag, next()));
        } else if (flag == "--lr") {
            args.lr = float(doubleFlag(flag, next()));
        } else if (flag == "--budget-mib") {
            args.budget_mib = doubleFlag(flag, next());
        } else if (flag == "--devices") {
            devices_text = next();
        } else if (flag == "--interconnect") {
            args.interconnect = next();
        } else if (flag == "--partitioner") {
            args.partitioner = next();
        } else if (flag == "--warm") {
            args.warm = true;
        } else if (flag == "--threads") {
            args.threads = int32_t(intFlag(flag, next()));
        } else if (flag == "--kernels") {
            args.kernels = next();
        } else if (flag == "--no-pipeline") {
            args.no_pipeline = true;
        } else if (flag == "--cache-gib") {
            args.cache_gib = doubleFlag(flag, next());
            if (args.cache_gib < 0.0)
                fatal("--cache-gib must be non-negative");
        } else if (flag == "--cache-policy") {
            args.cache_policy = next();
        } else if (flag == "--data-cache") {
            args.data_cache = next();
        } else if (flag == "--trace-out") {
            args.trace_out = next();
        } else if (flag == "--critpath-out") {
            args.critpath_out = next();
        } else if (flag == "--trace-ring") {
            args.trace_ring = next();
        } else if (flag == "--metrics-out") {
            args.metrics_out = next();
        } else if (flag == "--memprof-out") {
            args.memprof_out = next();
        } else if (flag == "--faults") {
            args.faults = next();
        } else if (flag == "--fault-seed") {
            args.fault_seed = uint64_t(intFlag(flag, next()));
        } else if (flag == "--checkpoint-out") {
            args.checkpoint_out = next();
        } else if (flag == "--checkpoint-every") {
            args.checkpoint_every = int(intFlag(flag, next()));
            if (args.checkpoint_every < 1)
                fatal("--checkpoint-every must be at least 1");
        } else if (flag == "--resume") {
            args.resume = next();
        } else if (flag == "--recover-on-oom") {
            args.recover_on_oom = true;
        } else if (flag == "--flight-recorder-out") {
            args.flight_recorder_out = next();
        } else if (flag == "--help") {
            std::printf("see the file comment for usage\n");
            std::exit(0);
        } else {
            fatal("unknown flag '", flag, "'");
        }
    }
    if (int64_t(args.fanouts.size()) != args.layers)
        fatal("--fanout must list exactly --layers values");
    // flag > BETTY_DEVICES > 1 (shared with the benches).
    const int64_t devices = envcfg::resolveInt(
        devices_text, "--devices", "BETTY_DEVICES", 1);
    if (devices < 1)
        fatal("--devices must be at least 1");
    args.devices = int32_t(devices);
    // flag > BETTY_CACHE_POLICY > "lru" (shared with the benches).
    args.cache_policy =
        envcfg::resolveString(args.cache_policy,
                              "BETTY_CACHE_POLICY", "lru");
    return args;
}

AggregatorKind
parseAggregator(const std::string& name)
{
    if (name == "mean")
        return AggregatorKind::Mean;
    if (name == "sum")
        return AggregatorKind::Sum;
    if (name == "pool")
        return AggregatorKind::Pool;
    if (name == "lstm")
        return AggregatorKind::Lstm;
    fatal("unknown aggregator '", name, "'");
}

} // namespace

int
main(int argc, char** argv)
{
    const Args args = parseArgs(argc, argv);
    // Register the post-mortem destination first so even setup
    // failures leave an event trail behind.
    if (!args.flight_recorder_out.empty())
        obs::FlightRecorder::setFatalDumpPath(
            args.flight_recorder_out);
    if (args.threads > 0)
        ThreadPool::setGlobalThreads(args.threads);
    // Kernel backend: flag > BETTY_KERNELS > scalar, strict
    // vocabulary (kernels/dispatch.h). "scalar" is the bit-exact
    // reference; "avx2"/"auto" vectorize the aggregation/GEMM hot
    // paths (docs/KERNELS.md).
    {
        const std::string kernels_text = envcfg::resolveString(
            args.kernels, "BETTY_KERNELS", "scalar");
        kernels::KernelMode mode;
        if (!kernels::parseKernelMode(kernels_text, &mode))
            fatal("malformed --kernels='", kernels_text,
                  "': expected scalar, avx2, or auto");
        kernels::setKernelMode(mode);
    }
    // Ring capacity must be set before the first event is recorded;
    // flag > BETTY_TRACE_RING > default, strict parse.
    const int64_t trace_ring =
        envcfg::resolveInt(args.trace_ring, "--trace-ring",
                           "BETTY_TRACE_RING", 1 << 16);
    if (trace_ring < 1)
        fatal("--trace-ring must be at least 1");
    obs::Trace::setRingCapacity(size_t(trace_ring));
    if (!args.trace_out.empty() || !args.critpath_out.empty()) {
        obs::Trace::setEnabled(true);
        obs::Trace::nameCurrentLane("main");
    }
    // The run report is fed by the metric collectors (memory
    // profiler, residuals, transfer counters), so --memprof-out
    // implies metrics collection.
    if (!args.metrics_out.empty() || !args.memprof_out.empty())
        obs::Metrics::setEnabled(true);

    obs::setRunMeta("binary", "train_cli");
    obs::setRunMeta("dataset", args.dataset);
    obs::setRunMeta("model", args.model + "/" + args.aggregator);

    // Fault injection: --faults wins, BETTY_FAULTS is the fallback.
    std::string fault_spec = args.faults;
    if (fault_spec.empty())
        if (const char* env = std::getenv("BETTY_FAULTS"))
            fault_spec = env;
    if (!fault_spec.empty()) {
        fault::FaultPlan fault_plan;
        std::string error;
        if (!fault::FaultPlan::parse(fault_spec, fault_plan, &error))
            fatal("--faults: ", error);
        fault_plan.seed = args.fault_seed;
        fault::Injector::install(std::move(fault_plan));
        inform("fault injection active: ", fault_spec);
        if (args.devices > 1)
            inform("multi-device run: device-drop faults re-shard "
                   "over the survivors; other fault kinds recover "
                   "only the single-device trainer");
    }

    Dataset ds;
    if (!args.data_cache.empty() && loadDataset(ds, args.data_cache)) {
        std::printf("loaded dataset cache '%s'\n",
                    args.data_cache.c_str());
    } else {
        ds = loadCatalogDataset(args.dataset, args.scale);
        if (!args.data_cache.empty()) {
            if (saveDataset(ds, args.data_cache))
                std::printf("wrote dataset cache '%s'\n",
                            args.data_cache.c_str());
            else
                warn("could not write dataset cache '",
                     args.data_cache, "'");
        }
    }
    std::printf("%s: %lld nodes, %lld edges, %lld train seeds\n",
                ds.name.c_str(), (long long)ds.numNodes(),
                (long long)ds.numEdges(),
                (long long)ds.trainNodes.size());

    const int64_t budget = int64_t(args.budget_mib * (1 << 20));
    DeviceMemoryModel device(args.devices == 1 ? budget : 0);
    DeviceMemoryModel::Scope scope(device);

    std::unique_ptr<GnnModel> model;
    if (args.model == "sage") {
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = args.hidden;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = args.layers;
        cfg.aggregator = parseAggregator(args.aggregator);
        model = std::make_unique<GraphSage>(cfg);
    } else if (args.model == "gat") {
        GatConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = args.hidden;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = args.layers;
        model = std::make_unique<Gat>(cfg);
    } else if (args.model == "gcn" || args.model == "gin") {
        StackConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = args.hidden;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = args.layers;
        if (args.model == "gcn")
            model = std::make_unique<Gcn>(cfg);
        else
            model = std::make_unique<Gin>(cfg);
    } else {
        fatal("unknown model '", args.model, "'");
    }
    std::printf("model: %s/%s, %lld layers, hidden %lld, %lld "
                "parameters\n",
                args.model.c_str(), args.aggregator.c_str(),
                (long long)args.layers, (long long)args.hidden,
                (long long)model->parameterCount());

    Adam adam(model->parameters(), args.lr);

    int start_epoch = 1;
    int32_t last_k = 1;
    if (!args.resume.empty()) {
        TrainCheckpoint checkpoint;
        IoStatus status = loadCheckpoint(checkpoint, args.resume);
        if (!status.ok())
            fatal("--resume: ", status.message);
        status = restoreCheckpoint(checkpoint, *model, adam);
        if (!status.ok())
            fatal("--resume: ", status.message);
        start_epoch = int(checkpoint.epochsCompleted) + 1;
        last_k = int32_t(checkpoint.lastK);
        obs::FlightRecorder::record(obs::FrCategory::Checkpoint,
                                    "checkpoint/restore",
                                    start_epoch, last_k);
        inform("resumed '", args.resume, "': ",
               checkpoint.epochsCompleted,
               " epoch(s) already done, continuing at epoch ",
               start_epoch, " with K=", last_k);
    }

    BettyOptions popts;
    popts.warmStart = args.warm;
    BettyPartitioner betty_part(popts);
    RangePartitioner range_part;
    RandomPartitioner random_part;
    MetisBaselinePartitioner metis_part(ds.graph);
    OutputPartitioner* partitioner = nullptr;
    if (args.partitioner == "betty")
        partitioner = &betty_part;
    else if (args.partitioner == "range")
        partitioner = &range_part;
    else if (args.partitioner == "random")
        partitioner = &random_part;
    else if (args.partitioner == "metis")
        partitioner = &metis_part;
    else
        fatal("unknown partitioner '", args.partitioner, "'");

    MemoryAwarePlanner planner(model->memorySpec(), budget);
    TransferModel transfer;
    Trainer trainer(ds, *model, adam, &device, &transfer);
    if (args.no_pipeline)
        trainer.setPipeline(false);

    // Feature cache: a reservation carved out of the device budget
    // that keeps hot/duplicated input rows from re-crossing the link
    // every micro-batch. With --devices > 1 the reservation is made
    // per device inside the MultiDeviceEngine instead (each device
    // has its own memory model and host link).
    CachePolicy cache_policy = CachePolicy::Lru;
    if (!parseCachePolicy(args.cache_policy, &cache_policy))
        fatal("unknown --cache-policy '", args.cache_policy, "'");
    std::unique_ptr<FeatureCache> cache;
    if (args.cache_gib > 0.0) {
        if (args.devices > 1) {
            inform("feature cache: ",
                   TablePrinter::num(args.cache_gib, 3),
                   " GiB reserved per device (policy ",
                   cachePolicyName(cache_policy), ")");
        } else {
            cache = std::make_unique<FeatureCache>(
                &device, gib(args.cache_gib),
                ds.featureDim() * int64_t(sizeof(float)),
                cache_policy);
            if (cache_policy == CachePolicy::LruPinned) {
                // Pin the highest-out-degree nodes: they feed the
                // most destinations, so they recur in the most
                // micro-batches. Deterministic order: degree
                // descending, node id ascending.
                std::vector<int64_t> hot(size_t(ds.numNodes()));
                for (int64_t n = 0; n < ds.numNodes(); ++n)
                    hot[size_t(n)] = n;
                std::stable_sort(
                    hot.begin(), hot.end(),
                    [&](int64_t a, int64_t b) {
                        return ds.graph.outDegree(a) >
                               ds.graph.outDegree(b);
                    });
                // Pin at most half the capacity so the LRU side keeps
                // room for the current micro-batch's working set.
                const int64_t pin_rows = cache->capacityRows() / 2;
                hot.resize(size_t(
                    std::min<int64_t>(pin_rows, ds.numNodes())));
                cache->pin(hot);
            }
            trainer.setFeatureCache(cache.get());
            inform("feature cache: ", cache->capacityRows(),
                   " rows (", TablePrinter::num(args.cache_gib, 3),
                   " GiB, policy ", cachePolicyName(cache_policy),
                   ", ", cache->pinnedRows(), " pinned)");
        }
    }

    RecoveryPolicy recovery_policy;
    recovery_policy.reactToActualOom = args.recover_on_oom;
    ResilientTrainer resilient(trainer, model->memorySpec(),
                               *partitioner,
                               args.devices == 1 ? &device : nullptr,
                               recovery_policy);
    resilient.setFeatureSource(&ds.features);
    resilient.setFeatureCache(cache.get());
    MultiDeviceConfig multi_config;
    multi_config.numDevices = args.devices;
    multi_config.deviceCapacityBytes = budget;
    if (!InterconnectConfig::parse(args.interconnect,
                                   &multi_config.interconnect))
        fatal("unknown --interconnect '", args.interconnect,
              "' (expected nvlink or pcie)");
    multi_config.cacheBytesPerDevice =
        args.devices > 1 ? gib(args.cache_gib) : 0;
    multi_config.cachePolicy = cache_policy;
    multi_config.pipeline = !args.no_pipeline;
    std::unique_ptr<MultiDeviceEngine> multi_engine;
    if (args.devices > 1)
        multi_engine = std::make_unique<MultiDeviceEngine>(
            ds, *model, adam, multi_config);

    NeighborSampler test_sampler(ds.graph, args.fanouts, 999);
    const auto test_batch = test_sampler.sample(ds.testNodes);

    // End-of-run reporting goes through the shared TablePrinter
    // formatter; during training only a terse progress line prints.
    TablePrinter summary(args.devices == 1
                             ? "training summary (per epoch)"
                             : "multi-device training summary "
                               "(per epoch)");
    summary.setHeader({"epoch", "K", "loss", "acc", "test",
                       "peak MiB", "seconds", "oom", "oomN"});

    obs::RunReport report;
    report.setBinary("train_cli");
    report.setDataset(ds.name, ds.numNodes(), ds.numEdges(),
                      ds.numClasses, ds.featureDim());
    report.setConfig("dataset", args.dataset);
    report.setConfig("scale", std::to_string(args.scale));
    report.setConfig("model", args.model);
    report.setConfig("aggregator", args.aggregator);
    report.setConfig("layers", std::to_string(args.layers));
    report.setConfig("hidden", std::to_string(args.hidden));
    report.setConfig("epochs", std::to_string(args.epochs));
    report.setConfig("budget_mib", std::to_string(args.budget_mib));
    report.setConfig("devices", std::to_string(args.devices));
    if (args.devices > 1)
        report.setConfig("interconnect",
                         multi_config.interconnect.name);
    report.setConfig("partitioner", args.partitioner);
    report.setConfig("threads",
                     std::to_string(ThreadPool::globalThreads()));
    report.setConfig("cache_gib", std::to_string(args.cache_gib));
    report.setConfig("cache_policy",
                     cache ? cachePolicyName(cache->policy())
                           : "none");
    if (!fault_spec.empty())
        report.setConfig("faults", fault_spec);

    int64_t run_peak_bytes = 0;
    double total_compute_seconds = 0.0;
    double total_transfer_seconds = 0.0;
    double final_test_accuracy = 0.0;

    for (int epoch = start_epoch; epoch <= args.epochs; ++epoch) {
        BETTY_TRACE_SPAN("epoch");
        MultiLayerBatch full;
        {
            BETTY_TRACE_SPAN("epoch/sample");
            NeighborSampler sampler(ds.graph, args.fanouts,
                                    uint64_t(epoch));
            full = sampler.sample(ds.trainNodes);
        }

        if (args.devices == 1) {
            // Planning — and any mid-epoch re-planning — happens
            // inside the resilient runtime; a budget nothing fits
            // skips the epoch with a report instead of crashing.
            const ResilientEpochResult result =
                resilient.trainEpoch(full, epoch, last_k);
            if (result.skipped) {
                summary.addRow({std::to_string(epoch),
                                std::to_string(result.plan.k), "-",
                                "-", "-", "-", "-", "skip", "-"});
                continue;
            }
            const EpochStats& stats = result.stats;
            last_k = result.plan.k; // warm the K search across epochs
            const double test = trainer.evaluate(test_batch);
            obs::RunReportEpoch epoch_row;
            epoch_row.epoch = epoch;
            epoch_row.k = result.plan.k;
            epoch_row.loss = stats.loss;
            epoch_row.accuracy = stats.accuracy;
            epoch_row.testAccuracy = test;
            epoch_row.peakBytes = stats.peakBytes;
            epoch_row.computeSeconds = stats.computeSeconds;
            epoch_row.transferSeconds = stats.transferSeconds;
            epoch_row.oom = stats.oom;
            report.addEpoch(epoch_row);
            run_peak_bytes = std::max(run_peak_bytes, stats.peakBytes);
            total_compute_seconds += stats.computeSeconds;
            total_transfer_seconds += stats.transferSeconds;
            final_test_accuracy = test;
            inform("epoch ", epoch, "/", args.epochs,
                   "  K=", result.plan.k, "  loss ",
                   TablePrinter::num(stats.loss, 4), "  acc ",
                   TablePrinter::num(stats.accuracy, 3),
                   result.replans
                       ? "  (re-planned x" +
                             std::to_string(result.replans) + ")"
                       : "",
                   stats.oom ? "  OOM!" : "");
            summary.addRow({std::to_string(epoch),
                            std::to_string(result.plan.k),
                            TablePrinter::num(stats.loss, 4),
                            TablePrinter::num(stats.accuracy, 3),
                            TablePrinter::num(test, 3),
                            TablePrinter::num(
                                double(stats.peakBytes) / (1 << 20),
                                1),
                            TablePrinter::num(stats.computeSeconds,
                                              2),
                            stats.oom ? "yes" : "no",
                            std::to_string(stats.oomEvents)});
        } else {
            PlanResult plan;
            {
                BETTY_TRACE_SPAN("epoch/plan");
                plan = planner.plan(full, *partitioner, last_k);
            }
            if (!plan.fits)
                fatal("budget too small even at one output per batch");
            last_k = plan.k; // warm the K search across epochs too
            const auto stats =
                multi_engine->trainEpoch(plan.microBatches, epoch);
            const double test = trainer.evaluate(test_batch);
            obs::RunReportEpoch epoch_row;
            epoch_row.epoch = epoch;
            epoch_row.k = plan.k;
            epoch_row.loss = stats.loss;
            epoch_row.accuracy = stats.accuracy;
            epoch_row.testAccuracy = test;
            epoch_row.peakBytes = stats.maxDevicePeakBytes;
            epoch_row.computeSeconds = stats.epochSeconds;
            double transfer_seconds = 0.0;
            for (const double s : stats.deviceTransferSeconds)
                transfer_seconds = std::max(transfer_seconds, s);
            epoch_row.transferSeconds = transfer_seconds;
            epoch_row.oom = stats.oom;
            report.addEpoch(epoch_row);
            run_peak_bytes =
                std::max(run_peak_bytes, stats.maxDevicePeakBytes);
            total_compute_seconds += stats.epochSeconds;
            total_transfer_seconds += transfer_seconds;
            final_test_accuracy = test;
            inform("epoch ", epoch, "/", args.epochs, "  K=", plan.k,
                   "  loss ", TablePrinter::num(stats.loss, 4),
                   "  acc ", TablePrinter::num(stats.accuracy, 3),
                   "  on ", stats.liveDevices, "/", args.devices,
                   " devices  dup ",
                   TablePrinter::num(stats.duplicationFactor, 2),
                   "x",
                   stats.deviceDrops
                       ? "  (device-drop x" +
                             std::to_string(stats.deviceDrops) + ")"
                       : "",
                   stats.oom ? "  OOM!" : "");
            summary.addRow(
                {std::to_string(epoch), std::to_string(plan.k),
                 TablePrinter::num(stats.loss, 4),
                 TablePrinter::num(stats.accuracy, 3),
                 TablePrinter::num(test, 3),
                 TablePrinter::num(
                     double(stats.maxDevicePeakBytes) / (1 << 20),
                     1),
                 TablePrinter::num(stats.epochSeconds, 2),
                 stats.oom ? "yes" : "no", "-"});
        }

        if (!args.checkpoint_out.empty() &&
            (epoch % args.checkpoint_every == 0 ||
             epoch == args.epochs)) {
            const TrainCheckpoint checkpoint = captureCheckpoint(
                *model, adam, epoch, last_k, uint64_t(epoch), 0);
            const IoStatus status =
                saveCheckpoint(checkpoint, args.checkpoint_out);
            if (status.ok()) {
                obs::FlightRecorder::record(
                    obs::FrCategory::Checkpoint, "checkpoint/write",
                    epoch, last_k);
                inform("wrote checkpoint '", args.checkpoint_out,
                       "' (after epoch ", epoch, ")");
            } else {
                warn("could not write checkpoint: ", status.message);
            }
        }
    }
    summary.print();

    if (!args.trace_out.empty()) {
        if (obs::Trace::writeChromeTrace(args.trace_out))
            inform("wrote trace '", args.trace_out,
                   "' (open in chrome://tracing or ui.perfetto.dev)");
        else
            warn("could not write trace '", args.trace_out, "'");
    }
    if (obs::Trace::enabled() && obs::Trace::droppedEvents() > 0)
        warn("trace dropped ", obs::Trace::droppedEvents(),
             " event(s) to the per-thread ring (capacity ",
             trace_ring, "); raise BETTY_TRACE_RING or "
             "--trace-ring for a lossless trace");
    if (!args.critpath_out.empty()) {
        namespace critpath = obs::critpath;
        critpath::SpanGraph graph = critpath::buildFromLiveTrace();
        critpath::CritpathError error;
        critpath::SegmentGraph segments;
        if (!critpath::validateSpanGraph(&graph, &error) ||
            !critpath::buildSegmentGraph(graph, &segments, &error)) {
            warn("critpath analysis failed (",
                 critpath::critpathErrorKindName(error.kind), "): ",
                 error.message);
        } else {
            const critpath::CriticalPathResult result =
                critpath::analyzeCriticalPath(graph, segments);
            if (critpath::writeCritpathReport(args.critpath_out,
                                              graph, result, {}))
                inform("wrote critpath report '", args.critpath_out,
                       "' (", result.steps.size(),
                       " steps, coverage ",
                       TablePrinter::num(result.coverage, 4),
                       "; inspect with betty_report critpath)");
            else
                warn("could not write critpath report '",
                     args.critpath_out, "'");
        }
    }
    if (!args.metrics_out.empty()) {
        if (obs::Metrics::writeJson(args.metrics_out))
            inform("wrote metrics '", args.metrics_out, "'");
        else
            warn("could not write metrics '", args.metrics_out, "'");
    }
    if (!args.memprof_out.empty()) {
        report.setTimeline(device.timeline());
        report.setPeakBytes(run_peak_bytes);
        report.setTotalComputeSeconds(total_compute_seconds);
        report.setTotalTransferSeconds(total_transfer_seconds);
        report.setFinalTestAccuracy(final_test_accuracy);
        report.setEdgeCut(
            obs::Metrics::gauge("partition.edge_cut").value());
        report.setTransferBytes(
            obs::Metrics::counter("transfer.bytes").value());
        report.setOomEvents(
            obs::Metrics::counter("device.oom_events").value());
        obs::RunReportCache cache_section;
        if (cache) {
            const FeatureCacheStats cache_stats = cache->stats();
            cache_section.enabled = true;
            cache_section.policy = cachePolicyName(cache->policy());
            cache_section.capacityBytes = gib(args.cache_gib);
            cache_section.reservedBytes = cache->reservedBytes();
            cache_section.hits = cache_stats.hits;
            cache_section.misses = cache_stats.misses;
            cache_section.bytesSaved = cache_stats.bytesSaved;
            cache_section.evictions = cache_stats.evictions;
            cache_section.releases = cache_stats.releases;
            cache_section.releasedBytes = cache_stats.releasedBytes;
        }
        report.setCache(cache_section);
        const RecoveryReport& recovered = resilient.report();
        obs::RunReportRecovery recovery;
        recovery.replans = recovered.replans;
        recovery.oomRetries = recovered.oomRetries;
        recovery.transferRetries = recovered.transferRetries;
        recovery.batchesSkipped = recovered.batchesSkipped;
        recovery.corruptRowsRepaired = recovered.corruptRowsRepaired;
        recovery.faultsInjected = recovered.faultsInjected;
        recovery.retryFailures =
            obs::Metrics::counter("retry.failures").value();
        recovery.retryBackoffUs =
            obs::Metrics::counter("retry.backoff_us").value();
        recovery.retryExhausted =
            obs::Metrics::counter("retry.exhausted").value();
        recovery.faultsActive = fault::Injector::active();
        report.setRecovery(recovery);
        if (report.writeJson(args.memprof_out))
            inform("wrote run report '", args.memprof_out,
                   "' (inspect with betty_report)");
        else
            warn("could not write run report '", args.memprof_out,
                 "'");
    }
    if (!args.flight_recorder_out.empty()) {
        if (obs::FlightRecorder::writeJson(args.flight_recorder_out))
            inform("wrote flight recorder '",
                   args.flight_recorder_out, "' (",
                   obs::FlightRecorder::recordedEvents(),
                   " events, ",
                   obs::FlightRecorder::droppedEvents(),
                   " dropped)");
        else
            warn("could not write flight recorder '",
                 args.flight_recorder_out, "'");
    }
    return 0;
}
