/**
 * @file
 * Quickstart: train a GraphSAGE model under a device-memory budget
 * with Betty's batch-level partitioning.
 *
 * The whole public API in ~60 lines of logic:
 *   1. load (or synthesize) a dataset,
 *   2. sample the full training batch into bipartite blocks,
 *   3. let Betty size K and build the micro-batches,
 *   4. train with gradient accumulation — same convergence as
 *      full-batch, a fraction of the peak memory.
 */
#include <cstdio>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"

int
main()
{
    using namespace betty;

    // 1. A synthetic stand-in for ogbn-arxiv (see DESIGN.md).
    const Dataset ds = loadCatalogDataset("arxiv_like", 0.2);
    std::printf("dataset: %lld nodes, %lld edges, %lld features, "
                "%d classes\n",
                (long long)ds.numNodes(), (long long)ds.numEdges(),
                (long long)ds.featureDim(), ds.numClasses);

    // 2. Sample the full training batch (2 layers, fanout 5 and 10).
    NeighborSampler sampler(ds.graph, {5, 10});
    const MultiLayerBatch full = sampler.sample(ds.trainNodes);
    std::printf("full batch: %lld output nodes -> %lld input nodes, "
                "%lld edges\n",
                (long long)full.outputNodes().size(),
                (long long)full.inputNodes().size(),
                (long long)full.totalEdges());

    // 3. Simulated accelerator + model + Betty plan.
    DeviceMemoryModel device; // tracks peak; planner enforces budget
    DeviceMemoryModel::Scope scope(device);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.aggregator = AggregatorKind::Mean;
    GraphSage model(cfg);
    Adam adam(model.parameters(), 0.01f);

    const auto full_estimate =
        estimateBatchMemory(full, model.memorySpec());
    BettyConfig config;
    config.deviceCapacityBytes = full_estimate.peak / 2; // half!
    Betty betty(model.memorySpec(), config);
    const PlanResult plan = betty.plan(full);
    std::printf("budget %.1f MiB (half the full batch): Betty chose "
                "K = %d micro-batches in %d estimator calls\n",
                double(config.deviceCapacityBytes) / (1 << 20),
                plan.k, plan.attempts);

    // 4. Train. Micro-batch accumulation == full-batch gradients.
    TransferModel transfer;
    Trainer trainer(ds, model, adam, &device, &transfer);
    NeighborSampler test_sampler(ds.graph, {5, 10}, 99);
    const auto test_batch = test_sampler.sample(ds.testNodes);
    for (int epoch = 1; epoch <= 10; ++epoch) {
        const EpochStats stats =
            trainer.trainMicroBatches(plan.microBatches);
        std::printf("epoch %2d  loss %.4f  train_acc %.3f  "
                    "test_acc %.3f  peak %.1f MiB%s\n",
                    epoch, stats.loss, stats.accuracy,
                    trainer.evaluate(test_batch),
                    double(stats.peakBytes) / (1 << 20),
                    stats.oom ? "  (OOM!)" : "");
    }
    return 0;
}
