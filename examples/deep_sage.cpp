/**
 * @file
 * Scenario: deeper aggregation (paper §1, Figure 2b). Each extra
 * GNN layer multiplies the receptive field, so memory grows
 * near-exponentially with depth; Betty's planner absorbs the growth
 * by raising K instead of forcing a shallower model or a smaller
 * effective batch.
 *
 * This example sweeps depth 1..4 on one budget and reports, per
 * depth: the full-batch estimate, the planned K, and one verified
 * training epoch inside the budget.
 */
#include <cstdio>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"

int
main()
{
    using namespace betty;

    const Dataset ds = loadCatalogDataset("arxiv_like", 0.5);
    const int64_t budget = gib(0.015);
    std::printf("arxiv_like (%lld nodes), device budget %.0f MiB\n",
                (long long)ds.numNodes(),
                double(budget) / (1 << 20));

    const std::vector<int64_t> all_fanouts = {5, 8, 10, 12};
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 1024));

    for (int64_t depth = 1; depth <= 4; ++depth) {
        const std::vector<int64_t> fanouts(
            all_fanouts.begin(), all_fanouts.begin() + depth);
        NeighborSampler sampler(ds.graph, fanouts, 7);
        const auto full = sampler.sample(seeds);

        DeviceMemoryModel device;
        DeviceMemoryModel::Scope scope(device);
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 32;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = depth;
        GraphSage model(cfg);
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(ds, model, adam, &device);

        const auto est = estimateBatchMemory(full, model.memorySpec());
        Betty betty(model.memorySpec(),
                    {.deviceCapacityBytes = budget});
        const auto plan = betty.plan(full);
        if (!plan.fits) {
            std::printf("depth %lld: even one output per micro-batch "
                        "exceeds the budget\n",
                        (long long)depth);
            continue;
        }
        const auto stats = trainer.trainMicroBatches(plan.microBatches);
        std::printf("depth %lld: full-batch est %6.1f MiB (%s)  ->  "
                    "K = %2d, measured peak %6.1f MiB, loss %.3f\n",
                    (long long)depth,
                    double(est.peak) / (1 << 20),
                    est.peak > budget ? "OOM" : "fits", plan.k,
                    double(stats.peakBytes) / (1 << 20), stats.loss);
    }
    std::printf("\nDeeper models need more micro-batches, never a "
                "different model.\n");
    return 0;
}
