/**
 * @file
 * Scenario: the paper's motivating case (§1, Figure 2a). You want the
 * LSTM aggregator — the accurate-but-hungry one — on a large graph,
 * and the full batch does not fit the accelerator. Betty plans K
 * micro-batches so the SAME effective batch trains within budget,
 * with no hyperparameter changes.
 *
 * The example deliberately trains once WITHOUT Betty to show the OOM
 * signal from the simulated device, then retrains with the plan.
 */
#include <cstdio>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"

int
main()
{
    using namespace betty;

    const Dataset ds = loadCatalogDataset("products_like", 0.08);
    std::printf("products_like: %lld nodes, %lld edges\n",
                (long long)ds.numNodes(), (long long)ds.numEdges());

    // One-layer SAGE with the LSTM aggregator (Figure 2(d) setup).
    NeighborSampler sampler(ds.graph, {8});
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 1000));
    const auto full = sampler.sample(seeds);

    const int64_t budget = gib(0.02); // a deliberately small "GPU"
    DeviceMemoryModel device(budget);
    DeviceMemoryModel::Scope scope(device);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 1;
    cfg.aggregator = AggregatorKind::Lstm;
    GraphSage model(cfg);
    Adam adam(model.parameters(), 0.005f);
    Trainer trainer(ds, model, adam, &device);

    // Attempt 1: full batch. The device records the overflow.
    auto stats = trainer.trainMicroBatches({full});
    std::printf("full batch: peak %.1f MiB on a %.1f MiB device -> "
                "%s\n",
                double(stats.peakBytes) / (1 << 20),
                double(budget) / (1 << 20),
                stats.oom ? "OOM" : "fits");

    // Attempt 2: let Betty size K from the estimator (no trial and
    // error on the device).
    Betty betty(model.memorySpec(),
                {.deviceCapacityBytes = budget});
    const auto plan = betty.plan(full);
    if (!plan.fits) {
        std::printf("no K fits this budget; raise it\n");
        return 1;
    }
    std::printf("Betty: K = %d micro-batches, worst estimated "
                "micro-batch %.1f MiB\n",
                plan.k,
                double(plan.maxEstimatedPeak) / (1 << 20));

    for (int epoch = 1; epoch <= 5; ++epoch) {
        device.resetPeak();
        stats = trainer.trainMicroBatches(plan.microBatches);
        std::printf("epoch %d  loss %.4f  acc %.3f  peak %.1f MiB  "
                    "%s\n",
                    epoch, stats.loss, stats.accuracy,
                    double(stats.peakBytes) / (1 << 20),
                    stats.oom ? "OOM" : "within budget");
    }
    return 0;
}
