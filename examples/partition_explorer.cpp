/**
 * @file
 * Scenario: a diagnostic tool for choosing a partitioner and K.
 *
 * Given a dataset name, fanouts, a seed count and a list of K values
 * (all optional arguments), prints per-partitioner redundancy, REG
 * cut, balance, and estimated max micro-batch memory — the quantities
 * a user would inspect before committing to a training configuration.
 *
 * Usage:
 *   partition_explorer [dataset] [num_seeds] [k1,k2,...]
 *   partition_explorer products_like 512 2,8,32
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "util/table.h"

namespace {

std::vector<int32_t>
parseKs(const char* arg)
{
    std::vector<int32_t> ks;
    const char* cursor = arg;
    while (*cursor) {
        ks.push_back(int32_t(std::strtol(cursor, nullptr, 10)));
        cursor = std::strchr(cursor, ',');
        if (!cursor)
            break;
        ++cursor;
    }
    return ks;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace betty;

    const std::string name = argc > 1 ? argv[1] : "arxiv_like";
    const size_t num_seeds = argc > 2 ? size_t(std::atoi(argv[2]))
                                      : size_t(512);
    const std::vector<int32_t> ks =
        argc > 3 ? parseKs(argv[3]) : std::vector<int32_t>{2, 4, 8, 16};

    const Dataset ds = loadCatalogDataset(name, 0.5);
    NeighborSampler sampler(ds.graph, {5, 10}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min(ds.trainNodes.size(), num_seeds));
    const auto full = sampler.sample(seeds);
    const auto reg = buildReg(full.blocks.back());
    std::printf("%s: batch of %lld outputs -> %lld inputs, REG has "
                "%lld edges\n",
                name.c_str(), (long long)full.outputNodes().size(),
                (long long)full.inputNodes().size(),
                (long long)reg.numEdges());

    GnnSpec spec;
    spec.inputDim = ds.featureDim();
    spec.hiddenDim = 32;
    spec.numClasses = ds.numClasses;
    spec.numLayers = 2;
    spec.paramCountGnn =
        (2 * spec.inputDim + 1) * spec.hiddenDim +
        (2 * spec.hiddenDim + 1) * spec.numClasses;

    RangePartitioner range;
    RandomPartitioner random(3);
    MetisBaselinePartitioner metis(ds.graph);
    BettyPartitioner betty;
    OutputPartitioner* partitioners[] = {&range, &random, &metis,
                                         &betty};

    TablePrinter table("partitioner diagnostics");
    table.setHeader({"K", "partitioner", "redundant_inputs", "reg_cut",
                     "outputs_max/min", "max_mem_MiB"});
    for (int32_t k : ks) {
        for (OutputPartitioner* part : partitioners) {
            const auto groups = part->partition(full, k);
            const auto micros = extractMicroBatches(full, groups);

            // REG cut of this grouping.
            std::unordered_map<int64_t, int32_t> where;
            for (size_t g = 0; g < groups.size(); ++g)
                for (int64_t v : groups[g])
                    where[v] = int32_t(g);
            const auto outputs = full.outputNodes();
            std::vector<int32_t> parts(outputs.size());
            for (size_t i = 0; i < outputs.size(); ++i)
                parts[i] = where[outputs[i]];

            size_t biggest = 0, smallest = SIZE_MAX;
            int64_t max_mem = 0;
            for (const auto& micro : micros) {
                biggest =
                    std::max(biggest, micro.outputNodes().size());
                smallest =
                    std::min(smallest, micro.outputNodes().size());
                if (!micro.outputNodes().empty())
                    max_mem = std::max(
                        max_mem,
                        estimateBatchMemory(micro, spec).peak);
            }
            table.addRow(
                {std::to_string(k), part->name(),
                 TablePrinter::count(inputNodeRedundancy(full, micros)),
                 TablePrinter::count(reg.cutCost(parts)),
                 std::to_string(biggest) + "/" +
                     std::to_string(smallest),
                 TablePrinter::num(double(max_mem) / (1 << 20), 1)});
        }
    }
    table.print();
    return 0;
}
